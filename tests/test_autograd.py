"""Gradient checks for the autograd engine (numeric differentiation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(op, x_shape, seed=0, atol=1e-5, **kwargs):
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=x_shape)
    t = Tensor(x_data.copy(), requires_grad=True)
    out = op(t, **kwargs)
    weights = rng.normal(size=out.shape)
    (out * Tensor(weights)).sum().backward()

    def scalar_fn(arr):
        return float((op(Tensor(arr), **kwargs).data * weights).sum())

    expected = numeric_grad(scalar_fn, x_data.copy())
    assert np.allclose(t.grad, expected, atol=atol), (
        f"max diff {np.abs(t.grad - expected).max()}"
    )


class TestElementwiseGrads:
    def test_add_broadcast(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert np.array_equal(a.grad, np.ones((3, 4)))
        assert np.array_equal(b.grad, np.full(4, 3.0))

    def test_mul_grad(self):
        check_gradient(lambda t: t * t, (5,))

    def test_div_grad(self):
        rng = np.random.default_rng(1)
        denom = Tensor(rng.uniform(1.0, 2.0, 6), requires_grad=True)
        numer = Tensor(rng.normal(size=6), requires_grad=True)
        (numer / denom).sum().backward()
        assert np.allclose(numer.grad, 1.0 / denom.data)
        assert np.allclose(denom.grad, -numer.data / denom.data**2)

    def test_relu_grad(self):
        check_gradient(F.relu, (20,))

    def test_silu_grad(self):
        check_gradient(F.silu, (20,))

    def test_square_grad(self):
        check_gradient(F.square, (10,))

    def test_polynomial_grad(self):
        check_gradient(F.polynomial, (8,), coeffs=[1.0, -2.0, 0.5, 3.0])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_matmul_grad(self, k):
        rng = np.random.default_rng(k)
        a = Tensor(rng.normal(size=(3, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b.data.T)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 2)))


class TestShapeGrads:
    def test_reshape_grad(self):
        check_gradient(lambda t: t.reshape(2, 6), (3, 4))

    def test_transpose_grad(self):
        check_gradient(lambda t: F.transpose(t, (1, 0)), (3, 4))

    def test_pad2d_grad(self):
        check_gradient(lambda t: F.pad2d(t, (1, 2)), (1, 2, 3, 3))

    def test_sum_axis_grad(self):
        check_gradient(lambda t: F.sum(t, axis=1), (3, 4))

    def test_mean_grad(self):
        check_gradient(lambda t: F.mean(t, axis=0), (4, 3))


class TestConvGrads:
    def test_conv_forward_matches_direct(self):
        """im2col conv equals a direct nested-loop convolution."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=(2, 2), padding=(1, 1)).data
        expected = _direct_conv(x, w, stride=2, padding=1)
        assert np.allclose(out, expected)

    def test_conv_input_grad(self):
        rng = np.random.default_rng(1)
        w = Tensor(rng.normal(size=(2, 3, 3, 3)))
        check_gradient(
            lambda t: F.conv2d(t, w, stride=(1, 1), padding=(1, 1)),
            (1, 3, 5, 5),
            atol=1e-4,
        )

    def test_conv_weight_grad(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(2, 3, 6, 6))
        w_data = rng.normal(size=(4, 3, 3, 3))
        w = Tensor(w_data.copy(), requires_grad=True)
        out = F.conv2d(Tensor(x_data), w, stride=(2, 2), padding=(1, 1))
        weights = rng.normal(size=out.shape)
        (out * Tensor(weights)).sum().backward()

        def scalar_fn(arr):
            return float(
                (F.conv2d(Tensor(x_data), Tensor(arr), stride=(2, 2), padding=(1, 1)).data * weights).sum()
            )

        expected = numeric_grad(scalar_fn, w_data.copy())
        assert np.allclose(w.grad, expected, atol=1e-4)

    def test_grouped_conv_matches_per_group(self):
        """groups=2 equals two independent half-channel convolutions."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 4, 6, 6))
        w = rng.normal(size=(6, 2, 3, 3))
        grouped = F.conv2d(Tensor(x), Tensor(w), padding=(1, 1), groups=2).data
        lo = F.conv2d(Tensor(x[:, :2]), Tensor(w[:3]), padding=(1, 1)).data
        hi = F.conv2d(Tensor(x[:, 2:]), Tensor(w[3:]), padding=(1, 1)).data
        assert np.allclose(grouped, np.concatenate([lo, hi], axis=1))

    def test_dilated_conv_shape_and_grad(self):
        rng = np.random.default_rng(4)
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        out = F.conv2d(Tensor(np.zeros((1, 1, 9, 9))), w, dilation=(2, 2))
        assert out.shape == (1, 1, 5, 5)
        check_gradient(
            lambda t: F.conv2d(t, w, dilation=(2, 2)), (1, 1, 9, 9), atol=1e-4
        )

    def test_depthwise_conv(self):
        """groups == channels: each channel convolved independently."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(3, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=(1, 1), groups=3).data
        for c in range(3):
            single = F.conv2d(
                Tensor(x[:, c : c + 1]), Tensor(w[c : c + 1]), padding=(1, 1)
            ).data
            assert np.allclose(out[:, c : c + 1], single)


class TestPoolingAndNorm:
    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2).data
        assert np.allclose(out, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avg_pool_grad(self):
        check_gradient(lambda t: F.avg_pool2d(t, kernel=2), (1, 2, 4, 4))

    def test_batchnorm_normalizes(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, (8, 4, 5, 5)), requires_grad=True)
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm2d(x, gamma, beta, rm, rv, training=True)
        assert abs(out.data.mean()) < 1e-8
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_batchnorm_input_grad(self):
        rng = np.random.default_rng(1)
        gamma_data = rng.normal(size=3) + 1.0
        beta_data = rng.normal(size=3)

        def op(t):
            return F.batch_norm2d(
                t,
                Tensor(gamma_data),
                Tensor(beta_data),
                np.zeros(3),
                np.ones(3),
                training=True,
            )

        check_gradient(op, (4, 3, 3, 3), atol=1e-4)

    def test_batchnorm_eval_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 10.0))
        rm, rv = np.array([10.0]), np.array([4.0])
        out = F.batch_norm2d(
            x, Tensor(np.ones(1)), Tensor(np.zeros(1)), rm, rv, training=False
        )
        assert np.allclose(out.data, 0.0, atol=1e-2)


class TestLosses:
    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        t = Tensor(logits_data.copy(), requires_grad=True)
        F.cross_entropy(t, targets).backward()

        def scalar_fn(arr):
            return float(F.cross_entropy(Tensor(arr), targets).data)

        expected = numeric_grad(scalar_fn, logits_data.copy())
        assert np.allclose(t.grad, expected, atol=1e-5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-8

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        with no_grad():
            a = Tensor(np.ones(3), requires_grad=True)
            out = a * a
        assert not out.requires_grad

    def test_gradient_accumulation(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * Tensor(2.0)).sum().backward()
        (a * Tensor(3.0)).sum().backward()
        assert np.allclose(a.grad, [5.0, 5.0])

    def test_diamond_graph(self):
        """A value used twice receives summed gradients."""
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a
        out.backward()
        assert np.allclose(a.grad, [5.0])  # d(a^2 + a)/da = 2a + 1

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (a * a).backward()


def _direct_conv(x, w, stride, padding):
    b, ci, h, wd = x.shape
    co, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wd + 2 * padding - kw) // stride + 1
    out = np.zeros((b, co, oh, ow))
    for bi in range(b):
        for o in range(co):
            for y in range(oh):
                for xx in range(ow):
                    patch = xp[bi, :, y * stride : y * stride + kh, xx * stride : xx * stride + kw]
                    out[bi, o, y, xx] = (patch * w[o]).sum()
    return out
