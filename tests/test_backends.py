"""Cross-backend tests: the simulator must agree with the exact backend
on semantics, and the cost model must reproduce the shapes of Figure 1."""

import numpy as np
import pytest
from fractions import Fraction

from repro.backend import CostModel, OpLedger, SimBackend
from repro.ckks.params import paper_parameters


class TestLedger:
    def test_phase_accounting(self):
        ledger = OpLedger()
        with ledger.phase("conv1"):
            ledger.charge("hrot", 0.5)
            ledger.charge("pmult", 0.1)
        with ledger.phase("boot"):
            ledger.charge("bootstrap", 10.0)
        assert ledger.rotations == 1
        assert ledger.bootstraps == 1
        assert ledger.seconds == pytest.approx(10.6)
        assert ledger.phase_seconds("conv") == pytest.approx(0.6)

    def test_nested_phases_restore(self):
        ledger = OpLedger()
        with ledger.phase("outer"):
            with ledger.phase("inner"):
                ledger.charge("hadd", 1.0)
            ledger.charge("hadd", 2.0)
        assert ledger.seconds_by_phase["inner"] == pytest.approx(1.0)
        assert ledger.seconds_by_phase["outer"] == pytest.approx(2.0)

    def test_reset(self):
        ledger = OpLedger()
        ledger.charge("hrot", 1.0)
        ledger.reset()
        assert ledger.rotations == 0
        assert ledger.seconds == 0.0


class TestCostModelShapes:
    """The qualitative claims of paper Figure 1."""

    @pytest.fixture(scope="class")
    def costs(self):
        return CostModel(paper_parameters())

    def test_pmult_increases_with_level(self, costs):
        latencies = [costs.pmult(l) for l in range(20)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_hrot_increases_with_level(self, costs):
        latencies = [costs.hrot(l) for l in range(20)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_bootstrap_superlinear_in_leff(self, costs):
        """Fig 1c: increments grow with L_eff (superlinear growth)."""
        lat = [costs.bootstrap(l) for l in range(1, 16)]
        increments = np.diff(lat)
        assert increments[-1] > increments[0] > 0

    def test_hoisting_strictly_helps(self, costs):
        level = 8
        none = costs.matvec_cost(level, 32, 8, 4, hoisting="none")
        single = costs.matvec_cost(level, 32, 8, 4, hoisting="single")
        double = costs.matvec_cost(level, 32, 8, 4, hoisting="double")
        assert double < single < none

    def test_rotation_dominates_pmult(self, costs):
        """Rotations are the expensive primitive (motivation for BSGS)."""
        assert costs.hrot(10) > 3 * costs.pmult(10)

    def test_fused_pricing_beats_double_at_every_level(self, costs):
        """Calibration regression (BENCH_ckks_hotpath.json): the fused
        deferred-mod-down path measures 2.9-3.9x over the per-rotation
        pipeline, so its price must beat hoisting="double" at shallow
        levels too — the previous constants made it look break-even."""
        for level in (2, 4, 8, 12):
            fused = costs.matvec_cost(level, 16, 3, 3, hoisting="fused")
            double = costs.matvec_cost(level, 16, 3, 3, hoisting="double")
            assert fused < double, f"fused not cheaper at level {level}"

    def test_inner_product_is_small_fraction_of_keyswitch(self, costs):
        """Measured: the lazy int64 inner product is ~5% of a keyswitch
        (hoisted-x8 median); decompose + mod-down dominate."""
        level = 8
        assert costs.ks_inner(level) < 0.2 * costs.keyswitch(level)

    def test_bootstrap_dominates_everything(self, costs):
        assert costs.bootstrap() > 20 * costs.hrot(costs.params.effective_level)


class TestSimBackend:
    def test_encode_encrypt_roundtrip(self, sim_backend):
        a = np.linspace(-1, 1, 50)
        ct = sim_backend.encode_encrypt(a)
        assert np.abs(sim_backend.decrypt(ct)[:50] - a).max() < 1e-4

    def test_level_and_scale_tracking(self, sim_backend):
        p = sim_backend.params
        a = np.ones(10) * 0.5
        ct = sim_backend.encode_encrypt(a)
        assert sim_backend.level_of(ct) == p.max_level
        assert sim_backend.scale_of(ct) == Fraction(p.scale)

    def test_errorless_rescale(self, sim_backend):
        p = sim_backend.params
        ct = sim_backend.encode_encrypt(np.ones(4))
        q_top = p.data_primes[ct.level]
        pt = sim_backend.encode(np.full(4, 0.5), ct.level, q_top)
        out = sim_backend.rescale(sim_backend.mul_plain(ct, pt))
        assert out.scale == Fraction(p.scale)

    def test_non_errorless_scale_drifts(self, sim_backend):
        """Encoding at Delta (not q_l) leaves scale != Delta: the problem
        errorless scale management solves (paper Section 6)."""
        p = sim_backend.params
        ct = sim_backend.encode_encrypt(np.ones(4))
        pt = sim_backend.encode(np.full(4, 0.5), ct.level, p.scale)
        out = sim_backend.rescale(sim_backend.mul_plain(ct, pt))
        assert out.scale != Fraction(p.scale)

    def test_mismatched_levels_raise(self, sim_backend):
        a = sim_backend.encode_encrypt(np.ones(4))
        b = sim_backend.level_down(sim_backend.encode_encrypt(np.ones(4)), 3)
        with pytest.raises(ValueError):
            sim_backend.add(a, b)

    def test_rescale_at_zero_raises(self, sim_backend):
        ct = sim_backend.level_down(sim_backend.encode_encrypt(np.ones(4)), 0)
        with pytest.raises(ValueError):
            sim_backend.rescale(ct)

    def test_bootstrap_contract(self, sim_backend):
        ct = sim_backend.level_down(sim_backend.encode_encrypt(np.full(8, 0.7)), 0)
        out = sim_backend.bootstrap(ct)
        assert sim_backend.level_of(out) == sim_backend.params.effective_level
        assert np.abs(sim_backend.decrypt(out)[:8] - 0.7).max() < 1e-3
        assert sim_backend.ledger.bootstraps == 1

    def test_bootstrap_range_check(self, sim_backend):
        ct = sim_backend.encode_encrypt(np.full(8, 2.5))
        with pytest.raises(ValueError):
            sim_backend.bootstrap(ct)

    def test_rotate_group_counts_once_per_step(self, sim_backend):
        ct = sim_backend.encode_encrypt(np.arange(16.0) / 16.0)
        outs = sim_backend.rotate_group(ct, [0, 1, 2, 3])
        assert sim_backend.ledger.counts["hrot_hoisted"] == 3
        assert outs[0] is ct
        got = sim_backend.decrypt(outs[2])
        expected = np.roll(sim_backend.decrypt(ct), -2)
        assert np.abs(got - expected).max() < 1e-4

    def test_hoisted_group_cheaper_than_individual(self, sim_params):
        individual = SimBackend(sim_params, seed=0)
        ct = individual.encode_encrypt(np.ones(8))
        for k in range(1, 9):
            individual.rotate(ct, k)
        grouped = SimBackend(sim_params, seed=0)
        ct2 = grouped.encode_encrypt(np.ones(8))
        grouped.rotate_group(ct2, list(range(1, 9)))
        assert grouped.ledger.seconds < individual.ledger.seconds

    def test_noise_free_mode_is_exact(self, sim_params):
        backend = SimBackend(sim_params, noise_free=True)
        a = np.linspace(-1, 1, 32)
        ct = backend.encode_encrypt(a)
        assert np.array_equal(backend.decrypt(ct)[:32], a)


class TestToyBackendInterface:
    def test_matches_sim_semantics(self, toy_backend, sim_params):
        """The same little program gives the same answer on both backends."""
        sim = SimBackend(sim_params, seed=3)
        rng = np.random.default_rng(5)
        a = rng.uniform(-1, 1, 64)
        b = rng.uniform(-1, 1, 64)

        results = []
        for backend in (toy_backend, sim):
            ct = backend.encode_encrypt(a)
            level = backend.level_of(ct)
            pt = backend.encode(b, level, backend.params.data_primes[level])
            out = backend.rescale(backend.mul_plain(ct, pt))
            out = backend.rotate(out, 3)
            # Rotation shifts within the full slot vector, so only the
            # first 61 outputs still hold products of encoded values.
            results.append(backend.decrypt(out)[:61])
        expected = (a * b)[3:]
        # Both close to the truth (toy backend has ~8-bit precision).
        assert np.abs(results[0] - expected).max() < 2e-2
        assert np.abs(results[1] - expected).max() < 1e-4

    def test_ledger_counts_rotations(self, toy_backend):
        toy_backend.ledger.reset()
        ct = toy_backend.encode_encrypt(np.ones(8))
        toy_backend.rotate(ct, 1)
        toy_backend.rotate(ct, 2)
        assert toy_backend.ledger.rotations == 2

    def test_rotate_group_exact_values(self, toy_backend):
        a = np.linspace(-1, 1, toy_backend.slot_count)
        ct = toy_backend.encode_encrypt(a)
        outs = toy_backend.rotate_group(ct, [1, 4])
        assert np.abs(toy_backend.decrypt(outs[4]) - np.roll(a, -4)).max() < 2e-2
