"""Tests for the real CKKS bootstrapping pipeline (repro.ckks.bootstrap).

The default backend satisfies the paper's bootstrap contract with an
oracle refresh; these tests validate that contract against the actual
ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff pipeline running on
the exact toy arithmetic.
"""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.toy import ToyBackend
from repro.ckks.bootstrap import (
    CkksBootstrapper,
    overflow_bound,
    scaled_sine,
    shifted_cosine,
)
from repro.ckks.params import (
    bootstrap_parameters,
    double_angle_bootstrap_parameters,
    toy_parameters,
)
from repro.utils.rng import SeededRng

PARAMS = bootstrap_parameters()


@pytest.fixture(scope="module")
def backend():
    return ToyBackend(PARAMS, seed=7, real_bootstrap=True)


@pytest.fixture(scope="module")
def refreshed(backend):
    """One shared end-to-end bootstrap run (the expensive part)."""
    rng = np.random.default_rng(3)
    message = rng.uniform(-0.9, 0.9, PARAMS.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    out = backend.bootstrap(ct)
    return message, ct, out


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------
class TestBuildingBlocks:
    def test_overflow_bound_grows_with_hamming_weight(self):
        bounds = [overflow_bound(h) for h in (2, 8, 32, 128)]
        assert bounds == sorted(bounds)
        assert overflow_bound(8) == 6

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_sparse_ternary_exact_weight(self, weight):
        secret = SeededRng(1).sparse_ternary(64, weight)
        assert np.count_nonzero(secret) == weight
        assert set(np.unique(secret)).issubset({-1, 0, 1})

    def test_sparse_ternary_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            SeededRng(0).sparse_ternary(16, 0)
        with pytest.raises(ValueError):
            SeededRng(0).sparse_ternary(16, 17)

    def test_scaled_sine_recovers_fractional_part(self):
        """G((u + q0*I)/(q0*B)) ~ u/Delta: the EvalMod identity."""
        q0, delta, window = PARAMS.primes[0], PARAMS.scale, 7
        poly = scaled_sine(q0 / delta, window, 63)
        rng = np.random.default_rng(0)
        u = rng.uniform(-0.4, 0.4, 128) * delta
        overflow = rng.integers(-(window - 2), window - 1, 128)
        x = (u + q0 * overflow.astype(float)) / (q0 * window)
        # Cubic linearization error: |u/Delta| * (2*pi*u/q0)^2 / 6, which
        # at the extreme u = 0.4*Delta and Delta/q0 = 2^-3 is ~7e-3.
        assert np.abs(poly(x) - u / delta).max() < 1e-2

    def test_scaled_sine_diverges_below_nyquist_degree(self):
        """Degrees below ~ e*pi*B cannot represent the sine window."""
        q0, delta = PARAMS.primes[0], PARAMS.scale
        good = scaled_sine(q0 / delta, 7, 63)
        bad = scaled_sine(q0 / delta, 7, 31)
        x = np.linspace(-0.95, 0.95, 200)
        target = (q0 / (2 * math.pi * delta)) * np.sin(2 * math.pi * 7 * x)
        assert np.abs(good(x) - target).max() < 1e-4
        assert np.abs(bad(x) - target).max() > 1.0


# ---------------------------------------------------------------------------
# ModRaise
# ---------------------------------------------------------------------------
class TestModRaise:
    def test_identity_modulo_q0(self, backend):
        ctx = backend.context
        msg = np.linspace(-0.5, 0.5, PARAMS.slot_count)
        pt = ctx.encode(msg, level=0)
        ct = ctx.encrypt(pt)
        raised = ctx.mod_raise(ct, Fraction(1))
        u_orig = pt.poly.to_bigint_coeffs()
        u_full = ctx.decrypt(raised).poly.to_bigint_coeffs()
        q0 = PARAMS.primes[0]
        overflow = (u_full - u_orig) % q0
        # decryption noise shifts u by a few hundred units (the ternary
        # encryption randomness convolves the public-key noise), but
        # never by anything close to a q0 multiple.
        centered = np.where(overflow > q0 // 2, overflow - q0, overflow)
        assert np.abs(centered.astype(float)).max() < q0 / 2**10

    def test_overflow_stays_inside_window(self, backend):
        ctx = backend.context
        rng = np.random.default_rng(5)
        bound = overflow_bound(PARAMS.secret_hamming_weight)
        q0 = PARAMS.primes[0]
        for seed in range(3):
            msg = np.random.default_rng(seed).uniform(-1, 1, PARAMS.slot_count)
            pt = ctx.encode(msg, level=0)
            ct = ctx.encrypt(pt)
            raised = ctx.mod_raise(ct, Fraction(1))
            diff = ctx.decrypt(raised).poly.to_bigint_coeffs() - pt.poly.to_bigint_coeffs()
            overflow = np.rint(diff.astype(np.float64) / q0)
            assert np.abs(overflow).max() <= bound
        del rng

    def test_rejects_nonzero_level(self, backend):
        ct = backend.encode_encrypt(np.zeros(4), level=2)
        with pytest.raises(ValueError, match="level-0"):
            backend.context.mod_raise(ct, Fraction(1))

    def test_raised_level_is_max(self, backend):
        ct = backend.encode_encrypt(np.zeros(4), level=0)
        raised = backend.context.mod_raise(ct, Fraction(3))
        assert raised.level == PARAMS.max_level
        assert raised.scale == Fraction(3)


# ---------------------------------------------------------------------------
# CoeffToSlot / SlotToCoeff
# ---------------------------------------------------------------------------
class TestTransforms:
    def test_coeff_to_slot_extracts_coefficients(self, backend):
        bs = backend._bootstrapper
        ctx = backend.context
        msg = np.random.default_rng(11).uniform(-0.8, 0.8, PARAMS.slot_count)
        pt = ctx.encode(msg, level=0)
        ct = ctx.encrypt(pt)
        raised = ctx.mod_raise(ct, Fraction(bs.q0) * bs.window)
        u_full = ctx.decrypt(raised).poly.to_bigint_coeffs().astype(np.float64)
        lo, hi = bs.coeff_to_slot(bs._prescale(raised))
        n = PARAMS.slot_count
        denominator = float(bs.q0 * bs.window)
        got_lo = ctx.decode_complex(ctx.decrypt(lo))
        got_hi = ctx.decode_complex(ctx.decrypt(hi))
        assert np.abs(got_lo - u_full[:n] / denominator).max() < 1e-5
        assert np.abs(got_hi - u_full[n:] / denominator).max() < 1e-5

    def test_coeff_to_slot_outputs_nearly_real(self, backend):
        bs = backend._bootstrapper
        ctx = backend.context
        ct = backend.encode_encrypt(np.ones(PARAMS.slot_count) * 0.3, level=0)
        raised = ctx.mod_raise(ct, Fraction(bs.q0) * bs.window)
        lo, _ = bs.coeff_to_slot(bs._prescale(raised))
        slots = ctx.decode_complex(ctx.decrypt(lo))
        assert np.abs(slots.imag).max() < 1e-5

    def test_transforms_invert_each_other(self, backend):
        """StC(CtS(x)) reproduces the raised coefficients' slot view.

        Without EvalMod in between, the q0*I overflow survives, so the
        expected output is the canonical embedding of the full raised
        coefficient vector u + q0*I (not the original message).
        """
        bs = backend._bootstrapper
        ctx = backend.context
        msg = np.random.default_rng(13).uniform(-0.5, 0.5, PARAMS.slot_count)
        ct = backend.encode_encrypt(msg, level=0)
        raised = ctx.mod_raise(ct, Fraction(bs.q0) * bs.window)
        u_full = ctx.decrypt(raised).poly.to_bigint_coeffs().astype(np.float64)
        lo, hi = bs.coeff_to_slot(bs._prescale(raised))
        # Re-declare the slot contents from u/(q0*B) to u/Delta (a pure
        # relabeling; no homomorphic op needed).
        factor = Fraction(bs.q0) * bs.window / PARAMS.scale
        lo.scale = lo.scale / factor
        hi.scale = hi.scale / factor
        back = bs.slot_to_coeff(lo, hi)
        got = ctx.decrypt_decode(back)
        expected = ctx.encoder.coeffs_to_slots(u_full).real / PARAMS.scale
        tolerance = 1e-4 * max(np.abs(expected).max(), 1.0)
        assert np.abs(got - expected).max() < tolerance

    def test_matvec_matches_cleartext(self, backend):
        """The live-ciphertext BSGS matvec equals the numpy product."""
        bs = backend._bootstrapper
        n = PARAMS.slot_count
        rng = np.random.default_rng(17)
        matrix = rng.normal(size=(n, n)) / n
        vec = rng.uniform(-1, 1, n)
        ct = backend.encode_encrypt(vec, level=PARAMS.max_level)
        level = PARAMS.max_level
        pt_scale = Fraction(PARAMS.scale) * PARAMS.primes[level] / ct.scale
        out = bs._matvec_sum([(ct, matrix)], pt_scale)
        got = backend.decrypt(out)
        assert np.abs(got - matrix @ vec).max() < 1e-4
        assert backend.level_of(out) == level - 1


# ---------------------------------------------------------------------------
# End-to-end
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def test_level_and_scale_contract(self, refreshed):
        _, _, out = refreshed
        assert out.level == PARAMS.effective_level
        assert out.scale == Fraction(PARAMS.scale)

    def test_precision_bits(self, backend, refreshed):
        message, _, out = refreshed
        err = np.abs(backend.decrypt(out) - message)
        assert err.max() < 0.05
        assert -np.log2(err.mean()) > 7.0

    def test_consumed_levels_match_budget(self, backend, refreshed):
        assert backend._bootstrapper.consumed_levels == PARAMS.boot_levels

    def test_bootstrap_counted_in_ledger(self, backend, refreshed):
        assert backend.ledger.counts["bootstrap"] >= 1
        # Every transform rotation (and the conjugation, which rides
        # the shared decomposition) is hoisted on the fused pipeline.
        assert backend.ledger.rotations > 0
        assert backend.ledger.counts["hrot_hoisted"] > 0

    def test_computation_continues_after_bootstrap(self, backend, refreshed):
        message, _, out = refreshed
        squared = backend.rescale(backend.mul(out, out))
        got = backend.decrypt(squared)
        assert np.abs(got - message**2).max() < 0.05
        assert backend.level_of(squared) == PARAMS.effective_level - 1

    def test_bootstrap_from_nonzero_level(self, backend):
        message = np.random.default_rng(23).uniform(-0.5, 0.5, PARAMS.slot_count)
        ct = backend.encode_encrypt(message, level=2)
        out = backend.bootstrap(ct)
        assert out.level == PARAMS.effective_level
        assert np.abs(backend.decrypt(out) - message).max() < 0.05

    def test_rejects_off_scale_input(self, backend):
        ct = backend.encode_encrypt(np.zeros(4), level=0)
        ct.scale = ct.scale * 2
        with pytest.raises(ValueError, match="scale"):
            backend.bootstrap(ct)


# ---------------------------------------------------------------------------
# Double-angle EvalMod variant
# ---------------------------------------------------------------------------
class TestDoubleAngle:
    def test_shifted_cosine_doubles_to_sine(self):
        """r applications of cos(2t)=2cos^2(t)-1 recover sin(2*pi*B*x)."""
        window, r = 7, 2
        poly = shifted_cosine(window, r, 23)
        x = np.linspace(-0.3, 0.3, 200)
        vals = poly(x)
        for _ in range(r):
            vals = 2 * vals * vals - 1
        assert np.abs(vals - np.sin(2 * math.pi * window * x)).max() < 1e-5

    def test_reduced_degree_suffices(self):
        """The base degree shrinks ~2^r: 23 works where direct needs 63."""
        backend = ToyBackend(double_angle_bootstrap_parameters(), seed=1)
        CkksBootstrapper(backend, eval_degree=23, double_angles=2)
        with pytest.raises(ValueError, match="eval_degree"):
            CkksBootstrapper(backend, eval_degree=23, double_angles=0)

    def test_end_to_end_precision(self):
        params = double_angle_bootstrap_parameters()
        backend = ToyBackend(params, seed=2)
        pipeline = CkksBootstrapper(backend, eval_degree=23, double_angles=2)
        message = np.random.default_rng(9).uniform(-0.9, 0.9, params.slot_count)
        out = pipeline.bootstrap(backend.encode_encrypt(message, level=0))
        err = np.abs(backend.decrypt(out) - message)
        assert out.level == params.effective_level
        assert out.scale == Fraction(params.scale)
        assert -np.log2(err.mean()) > 9.0
        # base fit + 1 scale-pin + 2 doublings + CtS/StC/prescale
        assert pipeline.consumed_levels == params.boot_levels

    def test_fewer_multiplications_than_direct(self):
        """The whole point: a degree-23 ladder + 2 squarings beats the
        direct degree-63 ladder on ct-ct multiplication count."""
        direct_backend = ToyBackend(bootstrap_parameters(), seed=3)
        direct = CkksBootstrapper(direct_backend, eval_degree=63)
        da_backend = ToyBackend(double_angle_bootstrap_parameters(), seed=3)
        reduced = CkksBootstrapper(da_backend, eval_degree=23, double_angles=2)
        message = np.random.default_rng(4).uniform(-0.5, 0.5, 64)
        direct.bootstrap(direct_backend.encode_encrypt(message, level=0))
        reduced.bootstrap(da_backend.encode_encrypt(message, level=0))
        assert da_backend.ledger.counts["hmult"] < direct_backend.ledger.counts["hmult"]


# ---------------------------------------------------------------------------
# Construction errors
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_requires_sparse_secret(self):
        dense = toy_parameters(ring_degree=128, max_level=13, boot_levels=10)
        with pytest.raises(ValueError, match="sparse"):
            ToyBackend(dense, real_bootstrap=True)

    def test_rejects_undersized_degree(self, backend):
        with pytest.raises(ValueError, match="eval_degree"):
            CkksBootstrapper(backend, eval_degree=15)

    def test_window_override(self, backend):
        custom = CkksBootstrapper(backend, eval_degree=127, window=12)
        assert custom.window == 12

    def test_oracle_backend_unaffected(self):
        """Default ToyBackend still uses the oracle refresh."""
        backend = ToyBackend(toy_parameters(max_level=6, boot_levels=3), seed=1)
        assert backend._bootstrapper is None
        msg = np.random.default_rng(1).uniform(-0.5, 0.5, 16)
        ct = backend.encode_encrypt(msg, level=0)
        out = backend.bootstrap(ct)
        assert out.level == backend.params.effective_level
