"""Tests for the fused bootstrap transforms, fused Gazelle folds, and
fused planner pricing (the PR 3 tentpole).

Three layers of coverage:

- the fused ``CkksBootstrapper._matvec_sum`` (multi-input "sum_i M_i x_i"
  via ``FheBackend.matvec_fused``) asserted **bit-exact** against a
  per-rotation reference that pays a fresh digit decomposition per
  rotation but the same deferred mod-down — including a grouped-digit
  (``ks_alpha=2``) configuration whose transform levels leave a partial
  last digit;
- the fused Gazelle rotate-and-sum fold (``FheBackend.rotate_sum_hoisted``),
  bit-exact against per-rotation raw accumulators and numerically
  against the sequential fold, with "# Rots" ledger parity;
- the cost model / placement planner, which now prices linear layers
  with the ``"fused"`` model by default.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.backend import SimBackend, ToyBackend
from repro.backend.costs import CostModel
from repro.ckks.bootstrap import CkksBootstrapper
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.params import bootstrap_parameters, toy_parameters
from repro.core.packing.layouts import VectorLayout
from repro.core.packing.matvec import build_linear_packing
from repro.core.placement import LayerSpec, PlacementChain, solve_placement
from repro.rns.poly import RnsPolynomial

BOOT_PARAM_SETS = {
    # Small ring keeps the suite fast; alpha2's transform levels have an
    # odd limb count, so the last key-switch digit group is partial.
    "alpha1": dict(ring_degree=64),
    "alpha2": dict(ring_degree=64, ks_alpha=2),
}


@pytest.fixture(scope="module", params=sorted(BOOT_PARAM_SETS))
def boot_setup(request):
    params = bootstrap_parameters(**BOOT_PARAM_SETS[request.param])
    backend = ToyBackend(params, seed=7)
    fused = CkksBootstrapper(backend, fused=True)
    unfused = CkksBootstrapper(backend, fused=False)
    rng = np.random.default_rng(3)
    message = rng.uniform(-0.9, 0.9, params.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    raised = fused._prescale(
        backend.context.mod_raise(ct, Fraction(fused.q0) * fused.window)
    )
    conj = backend.conjugate(raised)
    level = backend.level_of(raised)
    pt_scale = (
        Fraction(params.primes[level - 1]) * params.primes[level] / raised.scale
    )
    pairs = {
        "cts_lo": [(raised, fused.cts_lo[0]), (conj, fused.cts_lo[1])],
        "cts_hi": [(raised, fused.cts_hi[0]), (conj, fused.cts_hi[1])],
    }
    return backend, fused, unfused, pairs, pt_scale, message, ct


def per_rotation_matvec_sum(bs, pairs, pt_scale, table):
    """Per-rotation reference: fresh decomposition per rotation,
    immediate reductions, one deferred mod-down — the same exact math
    as the fused path, organized one rotation at a time."""
    ctx = bs.backend.context
    plan = bs._transform_plan(table, pairs)
    in_cts = [ct for ct, _ in pairs]
    level = in_cts[0].level
    ks_chain = ctx._ks_chain(level)
    mod_ks = ctx.basis.moduli_column(ks_chain)
    data_primes = ctx._data_chain(level)
    mod_q = ctx.basis.moduli_column(data_primes)
    acc_ext = np.zeros((2, len(ks_chain), ctx.basis.ring_degree), dtype=np.int64)
    acc_c0 = np.zeros((len(data_primes), ctx.basis.ring_degree), dtype=np.int64)
    acc_c1 = None
    for (_, i, k) in sorted(plan["terms"]):
        pt = ctx.encode(plan["terms"][(0, i, k)], level=level, scale=Fraction(pt_scale))
        if k == 0:
            acc_c0 = (acc_c0 + pt.poly.data * in_cts[i].c0.data) % mod_q
            if acc_c1 is None:
                acc_c1 = np.zeros_like(acc_c0)
            acc_c1 = (acc_c1 + pt.poly.data * in_cts[i].c1.data) % mod_q
            continue
        rot0, acc = ctx.rotate_hoisted_raw(in_cts[i], [k])[k]
        pt_ext = pt.poly.extend_primes_reference(ks_chain).data
        acc_ext = (acc_ext + pt_ext * acc) % mod_ks
        acc_c0 = (acc_c0 + pt.poly.data * rot0.data) % mod_q
    p0, p1 = ctx._ks_moddown(acc_ext, level)
    c0 = (acc_c0 + p0.data) % mod_q
    c1 = p1.data if acc_c1 is None else (acc_c1 + p1.data) % mod_q
    out = Ciphertext(
        c0=RnsPolynomial(ctx.basis, data_primes, c0, is_ntt=True),
        c1=RnsPolynomial(ctx.basis, data_primes, c1, is_ntt=True),
        level=level,
        scale=in_cts[0].scale * Fraction(pt_scale),
        slot_count=in_cts[0].slot_count,
    )
    return ctx.rescale(out)


class TestFusedBootstrapTransforms:
    def test_bitwise_equals_per_rotation_reference(self, boot_setup):
        backend, fused, _, pairs, pt_scale, _, _ = boot_setup
        for table, table_pairs in pairs.items():
            got = fused._matvec_sum(table_pairs, pt_scale, table)
            ref = per_rotation_matvec_sum(fused, table_pairs, pt_scale, table)
            assert np.array_equal(got.c0.data, ref.c0.data), table
            assert np.array_equal(got.c1.data, ref.c1.data), table

    def test_matches_unfused_pipeline_to_noise_precision(self, boot_setup):
        """The per-rotation BSGS fallback reorders the mod-down
        roundings, so agreement is to noise precision, not bitwise."""
        backend, fused, unfused, pairs, pt_scale, _, _ = boot_setup
        for table, table_pairs in pairs.items():
            a = fused._matvec_sum(table_pairs, pt_scale, table)
            b = unfused._matvec_sum(table_pairs, pt_scale, table)
            assert a.level == b.level and a.scale == b.scale
            da, db = backend.decrypt(a), backend.decrypt(b)
            assert np.abs(da - db).max() < 5e-2 * max(1.0, np.abs(da).max())

    def test_ledger_rotation_parity(self, boot_setup):
        """Both paths report the BSGS plan's rotation count (identity
        baby steps excluded) so "# Rots" stays paper-comparable."""
        backend, fused, unfused, pairs, pt_scale, _, _ = boot_setup
        plan_rots = fused._transform_plan("cts_lo", pairs["cts_lo"])["rot_count"]
        backend.ledger.reset()
        fused._matvec_sum(pairs["cts_lo"], pt_scale, "cts_lo")
        assert backend.ledger.rotations == plan_rots
        backend.ledger.reset()
        unfused._matvec_sum(pairs["cts_lo"], pt_scale, "cts_lo")
        assert backend.ledger.rotations == plan_rots

    def test_identity_rotation_never_charged(self, boot_setup):
        """Rotation by 0 is free everywhere: in ``rotate_group`` and in
        the transform plan (the old code planned ``range(n1)`` babies)."""
        backend, fused, _, pairs, _, _, ct = boot_setup
        plan = fused._transform_plan("cts_lo", pairs["cts_lo"])
        used = {b for babies in plan["babies"] for b in babies}
        assert plan["rot_count"] < len(plan["terms"])
        assert 0 in used  # offset 0 exists in a dense transform...
        backend.ledger.reset()
        outs = backend.rotate_group(pairs["cts_lo"][0][0], [0])
        assert backend.ledger.rotations == 0  # ...but never charges
        assert outs[0] is pairs["cts_lo"][0][0]

    def test_diagonal_plaintexts_cached_across_calls(self, boot_setup):
        backend, fused, _, pairs, pt_scale, _, _ = boot_setup
        fused._matvec_sum(pairs["cts_hi"], pt_scale, "cts_hi")  # warm
        calls = []
        original = backend.context.encode

        def counting_encode(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        backend.context.encode = counting_encode
        try:
            fused._matvec_sum(pairs["cts_hi"], pt_scale, "cts_hi")
        finally:
            backend.context.encode = original
        assert calls == []

    def test_full_bootstrap_fused_matches_unfused(self, boot_setup):
        backend, fused, unfused, _, _, message, ct = boot_setup
        backend.ledger.reset()
        out_f = fused.bootstrap(ct)
        rots_fused = backend.ledger.rotations
        backend.ledger.reset()
        out_u = unfused.bootstrap(ct)
        assert backend.ledger.rotations == rots_fused
        assert out_f.level == out_u.level
        assert out_f.scale == out_u.scale == Fraction(backend.params.scale)
        got_f, got_u = backend.decrypt(out_f), backend.decrypt(out_u)
        assert np.abs(got_f - message).mean() < 2.0**-7
        assert np.abs(got_f - got_u).max() < 2.0**-6


FOLD_PARAM_SETS = {
    "alpha1": dict(ring_degree=256, max_level=5),
    "alpha2_special2": dict(
        ring_degree=256, max_level=5, num_special_primes=2, ks_alpha=2
    ),
}


@pytest.fixture(scope="module", params=sorted(FOLD_PARAM_SETS))
def fold_setup(request):
    backend = ToyBackend(toy_parameters(**FOLD_PARAM_SETS[request.param]), seed=5)
    n = backend.slot_count
    rng = np.random.default_rng(11)
    m = n // 8  # squat matrix -> Gazelle hybrid with a 3-deep fold
    matrix = rng.uniform(-1, 1, (m, n))
    packed = build_linear_packing(matrix, None, VectorLayout(n, n), name="fc")
    assert packed.fold_shifts, "expected the Gazelle hybrid plan"
    values = np.linspace(-1, 1, n)
    ct = backend.encode_encrypt(values)
    return backend, packed, ct, values


class TestFusedGazelleFold:
    def test_fold_expansion_is_subset_sums(self, fold_setup):
        _, packed, _, _ = fold_setup
        steps = packed._fold_expansion()
        m2 = min(packed.fold_shifts)
        f = packed.slots // m2
        assert steps == [j * m2 for j in range(1, f)]

    def test_rotate_sum_bitwise_equals_per_rotation_raw(self, fold_setup):
        """Shared-decomposition rotate_sum == per-rotation fresh
        decompositions + one mod-down, bit for bit (including a
        partial-digit level in the alpha2 configuration)."""
        backend, packed, ct, _ = fold_setup
        ctx = backend.context
        for level in (ct.level, ct.level - 1):  # odd limb count -> partial digit
            a = backend.level_down(ct, level)
            steps = packed._fold_expansion()
            got = backend.rotate_sum_hoisted(a, steps)
            ks_chain = ctx._ks_chain(level)
            mod_ks = ctx.basis.moduli_column(ks_chain)
            data_primes = ctx._data_chain(level)
            mod_q = ctx.basis.moduli_column(data_primes)
            acc = np.zeros((2, len(ks_chain), ctx.basis.ring_degree), dtype=np.int64)
            c0 = a.c0.data.copy()
            for step in steps:
                rot0, raw = ctx.rotate_hoisted_raw(a, [step])[step]
                acc = (acc + raw) % mod_ks
                c0 = (c0 + rot0.data) % mod_q
            p0, p1 = ctx._ks_moddown(acc, level)
            assert np.array_equal(got.c0.data, (c0 + p0.data) % mod_q)
            assert np.array_equal(got.c1.data, (a.c1.data + p1.data) % mod_q)

    def test_fused_execute_matches_sequential_and_cleartext(self, fold_setup):
        backend, packed, ct, values = fold_setup
        pt_scale = Fraction(backend.params.data_primes[ct.level])
        expected = packed.execute_cleartext([values])[0]
        tol = 0.05 * max(1.0, np.abs(expected).max())
        fused = backend.decrypt(packed.execute(backend, [ct], pt_scale)[0])
        sequential = backend.decrypt(
            packed.execute(backend, [ct], pt_scale, hoisting="double-unfused")[0]
        )
        assert np.abs(fused - expected).max() < tol
        assert np.abs(sequential - expected).max() < tol
        assert np.abs(fused - sequential).max() < tol

    def test_fold_ledger_rotations_match_plan(self, fold_setup):
        """The fused fold charges len(fold_shifts) rotations (not the
        expanded count), keeping "# Rots" == the compile-time plan."""
        backend, packed, ct, _ = fold_setup
        pt_scale = Fraction(backend.params.data_primes[ct.level])
        packed.execute(backend, [ct], pt_scale)  # warm caches
        backend.ledger.reset()
        packed.execute(backend, [ct], pt_scale)
        assert backend.ledger.rotations == packed.rotation_count()

    def test_sim_backend_fused_fold(self, fold_setup):
        backend, packed, _, values = fold_setup
        sim = SimBackend(backend.params, seed=9)
        assert sim.supports_fused_fold
        ct = sim.encode_encrypt(values)
        pt_scale = Fraction(backend.params.data_primes[ct.level])
        expected = packed.execute_cleartext([values])[0]
        got = sim.decrypt(packed.execute(sim, [ct], pt_scale)[0])
        assert np.abs(got - expected).max() < 0.05 * max(1.0, np.abs(expected).max())
        sim.ledger.reset()
        packed.execute(sim, [ct], pt_scale)
        assert sim.ledger.rotations == packed.rotation_count()

    def test_rotate_sum_identity_and_dedup(self, fold_setup):
        backend, _, ct, values = fold_setup
        n = backend.slot_count
        assert backend.rotate_sum_hoisted(ct, [0]) is ct
        got = backend.decrypt(backend.rotate_sum_hoisted(ct, [3, 3 - n, 0]))
        assert np.abs(got - (values + np.roll(values, -3))).max() < 2e-2


class TestFusedPlannerPricing:
    def test_packed_cost_defaults_to_fused_price(self):
        params = toy_parameters(ring_degree=256, max_level=5)
        costs = CostModel(params)
        backend = ToyBackend(params, seed=1)
        n = backend.slot_count
        # Banded square matrix: genuine baby + giant steps, no fold —
        # the shape where deferring the mod-down pays off most.
        band = 16
        rng = np.random.default_rng(0)
        matrix = np.zeros((n, n))
        rows = np.arange(n)[:, None]
        matrix[rows, (rows + np.arange(band)[None, :]) % n] = rng.uniform(
            -1, 1, (n, band)
        )
        packed = build_linear_packing(matrix, None, VectorLayout(n, n))
        assert not packed.fold_shifts
        diag, baby, giant = packed.counts()
        level = 4
        fused = costs.matvec_cost(
            level, diag, baby, giant, "fused",
            num_in=packed.num_in, num_out=packed.num_out,
            num_folds=len(packed.fold_shifts),
            num_offsets=packed.nonzero_offset_count(),
        )
        assert packed.cost(level, costs) == fused
        assert fused < packed.cost(level, costs, hoisting="none")
        # At paper scale the deferred mod-down genuinely wins in-model:
        # deep chains make each giant step's decomposition (dnum NTT
        # batches) the dominant term the fused path amortizes away.
        from repro.ckks.params import paper_parameters

        paper_costs = CostModel(paper_parameters())
        top = paper_parameters().max_level
        assert packed.cost(top, paper_costs) < packed.cost(
            top, paper_costs, hoisting="double"
        )

    def test_offset_zero_only_layer_pays_no_keyswitch(self):
        """A depthwise 1x1 conv (batchnorm) has only offset-0 diagonals:
        execution performs no key switch, and neither does the price."""
        costs = CostModel(toy_parameters(ring_degree=256, max_level=5))
        level = 4
        priced = costs.matvec_cost(
            level, 4, 0, 0, "fused", num_in=1, num_out=1, num_offsets=0
        )
        no_rotation_floor = (
            4 * costs.pmult_fused(level)
            + 3 * costs.hadd(level)
            + costs.rescale(level)
        )
        assert priced == no_rotation_floor

    def test_fold_cost_picks_cheaper_form(self):
        costs = CostModel(toy_parameters(ring_degree=256, max_level=5))
        level = 5
        # Shallow folds: the expansion (shared decomposition) wins.
        assert costs.fused_fold_cheaper(level, 3)
        shallow = costs.fold_cost(level, 3)
        assert shallow < 3 * (costs.hrot(level) + costs.hadd(level))
        # Pathologically deep folds: sequential is cheaper, and
        # fold_cost must never exceed the sequential price.
        deep = costs.fold_cost(level, 20)
        assert deep <= 20 * (costs.hrot(level) + costs.hadd(level))

    def test_placement_under_fused_prices_is_valid(self):
        """The planner consumes the fused default price and still emits
        a feasible, consistent level policy."""
        params = toy_parameters(ring_degree=256, max_level=5)
        costs = CostModel(params)
        backend = ToyBackend(params, seed=1)
        n = backend.slot_count
        matrix = np.random.default_rng(1).uniform(-1, 1, (n, n))
        packed = build_linear_packing(matrix, None, VectorLayout(n, n))
        chain = PlacementChain(
            [
                LayerSpec(
                    f"fc{i}",
                    depth=1,
                    cost_fn=lambda l: packed.cost(l, costs),
                    boot_units=1,
                )
                for i in range(6)
            ]
        )
        result = solve_placement(chain, l_eff=3, boot_cost=costs.bootstrap())
        assert result.num_bootstraps >= 1  # 6 levels of depth, L_eff = 3
        level = result.entry_level
        for policy in result.policies:
            if policy.bootstrap_before:
                level = 3
            assert policy.exec_level <= level
            level = policy.exec_level - 1
            assert level >= 0
        # The chain total is built from the fused per-layer prices.
        expected_layer = packed.cost(result.policies[0].exec_level, costs)
        assert chain.items[0].cost_fn(result.policies[0].exec_level) == expected_layer

    def test_table5_placements_stay_valid_under_fused_prices(self):
        """Compile ResNet-20 (analyze mode) with the fused default and
        re-validate the Table 5 contract: a feasible, consistent level
        policy with a paper-regime bootstrap count."""
        from repro.ckks.params import paper_parameters
        from repro.models import relu_act, resnet_cifar
        from repro.nn import init
        from repro.orion import OrionNetwork

        init.seed_init(20)
        net = resnet_cifar(20, act=relu_act())
        compiled = OrionNetwork(net, (3, 32, 32)).compile(
            paper_parameters(), mode="analyze"
        )
        placement = compiled.placement
        l_eff = paper_parameters().effective_level
        level = placement.entry_level
        for policy in placement.policies:
            if policy.bootstrap_before:
                level = l_eff
            assert policy.exec_level <= level
            level = policy.exec_level - getattr(policy, "depth", 0)
        # Paper Table 5 regime: tens of bootstraps for ResNet-20, not
        # hundreds (the fused prices must not destabilize placement).
        assert 20 <= compiled.num_bootstraps <= 90
        assert placement.modeled_seconds > 0
