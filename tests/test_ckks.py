"""End-to-end tests for the exact toy CKKS implementation.

These tests validate the homomorphic property itself: every CKKS
operation is compared against the corresponding cleartext SIMD
operation (paper Section 2.5).
"""

import numpy as np
import pytest
from fractions import Fraction
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.encoding import SlotEncoder
from repro.ckks.params import CkksParameters, RingType, toy_parameters

TOLERANCE = 2e-2  # toy parameters give ~8-10 bits of precision


@pytest.fixture(scope="module")
def data(ckks):
    rng = np.random.default_rng(42)
    n = ckks.slot_count
    return rng.uniform(-1, 1, n), rng.uniform(-1, 1, n)


class TestEncoding:
    def test_roundtrip_precision(self):
        enc = SlotEncoder(256)
        rng = np.random.default_rng(0)
        slots = rng.normal(size=128) + 1j * rng.normal(size=128)
        back = enc.coeffs_to_slots(enc.slots_to_coeffs(slots))
        assert np.abs(back - slots).max() < 1e-12

    def test_real_messages_give_real_coeffs(self):
        enc = SlotEncoder(128)
        slots = np.linspace(-1, 1, 64).astype(complex)
        coeffs = enc.slots_to_coeffs(slots)
        assert np.isrealobj(coeffs)

    def test_rotation_exponents_cycle(self):
        enc = SlotEncoder(128)
        assert enc.rotation_exponent(0) == 1
        assert enc.rotation_exponent(64) == 1  # full cycle over 64 slots
        seen = {enc.rotation_exponent(k) for k in range(64)}
        assert len(seen) == 64

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=63))
    def test_rotation_is_cyclic_shift(self, k):
        enc = _ENC.setdefault(128, SlotEncoder(128))
        rng = np.random.default_rng(k)
        slots = rng.normal(size=64).astype(complex)
        coeffs = enc.slots_to_coeffs(slots)
        t = enc.rotation_exponent(k)
        n, two_n = 128, 256
        src = np.arange(n)
        dest = (src * t) % two_n
        sign = dest >= n
        dest = np.where(sign, dest - n, dest)
        out = np.zeros(n)
        out[dest] = np.where(sign, -coeffs, coeffs)
        rotated = enc.coeffs_to_slots(out)
        assert np.abs(rotated - np.roll(slots, -k)).max() < 1e-10


_ENC = {}


class TestParameters:
    def test_effective_level(self, toy_params):
        assert toy_params.effective_level == toy_params.max_level - toy_params.boot_levels

    def test_prime_chain_structure(self, toy_params):
        n = toy_params.ring_degree
        assert len(toy_params.data_primes) == toy_params.max_level + 1
        assert len(toy_params.special_primes) == toy_params.num_special_primes
        for q in toy_params.primes:
            assert q % (2 * n) == 1

    def test_conjugate_invariant_doubles_slots(self):
        std = toy_parameters(ring_degree=512, max_level=4, boot_levels=1)
        ci = toy_parameters(
            ring_degree=512, max_level=4, boot_levels=1,
            ring_type=RingType.CONJUGATE_INVARIANT,
        )
        assert ci.slot_count == 2 * std.slot_count == 512

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            CkksParameters(ring_degree=100, scale_bits=20, max_level=4)
        with pytest.raises(ValueError):
            CkksParameters(ring_degree=128, scale_bits=20, max_level=2, boot_levels=5)

    def test_security_table(self):
        small = toy_parameters(ring_degree=512, max_level=6)
        # 7 x ~21-bit primes + 29-bit special on N=2^9 is far beyond the
        # 128-bit-secure budget for that tiny ring.
        assert not small.is_128_bit_secure()


class TestHomomorphicOps:
    def test_encrypt_decrypt(self, ckks, data):
        a, _ = data
        ct = ckks.encode_encrypt(a)
        assert np.abs(ckks.decrypt_decode(ct) - a).max() < TOLERANCE

    def test_hadd(self, ckks, data):
        a, b = data
        out = ckks.add(ckks.encode_encrypt(a), ckks.encode_encrypt(b))
        assert np.abs(ckks.decrypt_decode(out) - (a + b)).max() < TOLERANCE

    def test_hsub(self, ckks, data):
        a, b = data
        out = ckks.sub(ckks.encode_encrypt(a), ckks.encode_encrypt(b))
        assert np.abs(ckks.decrypt_decode(out) - (a - b)).max() < TOLERANCE

    def test_padd(self, ckks, data):
        a, b = data
        out = ckks.add_plain(ckks.encode_encrypt(a), ckks.encode(b))
        assert np.abs(ckks.decrypt_decode(out) - (a + b)).max() < TOLERANCE

    def test_pmult_with_rescale(self, ckks, data):
        a, b = data
        out = ckks.rescale(ckks.mul_plain(ckks.encode_encrypt(a), ckks.encode(b)))
        assert out.level == ckks.params.max_level - 1
        assert np.abs(ckks.decrypt_decode(out) - a * b).max() < TOLERANCE

    def test_hmult_with_rescale(self, ckks, data):
        a, b = data
        out = ckks.rescale(ckks.mul(ckks.encode_encrypt(a), ckks.encode_encrypt(b)))
        assert np.abs(ckks.decrypt_decode(out) - a * b).max() < TOLERANCE

    def test_hmult_without_relin_still_decrypts(self, ckks, data):
        a, b = data
        out = ckks.mul(ckks.encode_encrypt(a), ckks.encode_encrypt(b), relinearize=False)
        assert out.c2 is not None
        vals = ckks.decrypt_decode(ckks.rescale(out))
        assert np.abs(vals - a * b).max() < TOLERANCE

    def test_rotation(self, ckks, data):
        a, _ = data
        for k in (1, 7, 100):
            out = ckks.rotate(ckks.encode_encrypt(a), k)
            assert np.abs(ckks.decrypt_decode(out) - np.roll(a, -k)).max() < TOLERANCE

    def test_rotation_by_zero_is_identity(self, ckks, data):
        a, _ = data
        ct = ckks.encode_encrypt(a)
        assert ckks.rotate(ct, 0) is ct

    def test_conjugate_on_real_data_is_identity(self, ckks, data):
        a, _ = data
        out = ckks.conjugate(ckks.encode_encrypt(a))
        assert np.abs(ckks.decrypt_decode(out) - a).max() < TOLERANCE

    def test_level_down(self, ckks, data):
        a, _ = data
        ct = ckks.level_down(ckks.encode_encrypt(a), 2)
        assert ct.level == 2
        assert np.abs(ckks.decrypt_decode(ct) - a).max() < TOLERANCE

    def test_errorless_scale_trick(self, ckks, data):
        """Encoding weights at scale q_l makes rescale land exactly on Delta."""
        a, b = data
        ct = ckks.encode_encrypt(a)
        q_top = ckks.params.data_primes[ct.level]
        pt = ckks.encode(b, level=ct.level, scale=Fraction(q_top))
        out = ckks.rescale(ckks.mul_plain(ct, pt))
        assert out.scale == Fraction(ckks.params.scale)
        assert np.abs(ckks.decrypt_decode(out) - a * b).max() < TOLERANCE

    def test_deep_chain_to_level_zero(self, ckks, data):
        a, _ = data
        ct = ckks.encode_encrypt(a)
        expected = a.copy()
        for _ in range(ckks.params.max_level):
            pt = ckks.encode(np.full(ckks.slot_count, 0.9), level=ct.level)
            ct = ckks.rescale(ckks.mul_plain(ct, pt))
            expected *= 0.9
        assert ct.level == 0
        assert np.abs(ckks.decrypt_decode(ct) - expected).max() < TOLERANCE

    def test_mismatched_levels_raise(self, ckks, data):
        a, b = data
        ca = ckks.encode_encrypt(a)
        cb = ckks.level_down(ckks.encode_encrypt(b), 1)
        with pytest.raises(ValueError):
            ckks.add(ca, cb)

    def test_rescale_at_level_zero_raises(self, ckks, data):
        a, _ = data
        ct = ckks.level_down(ckks.encode_encrypt(a), 0)
        with pytest.raises(ValueError):
            ckks.rescale(ct)


class TestBootstrap:
    def test_bootstrap_restores_levels(self, ckks, data):
        a, _ = data
        ct = ckks.level_down(ckks.encode_encrypt(a), 0)
        boosted = ckks.bootstrap(ct)
        assert boosted.level == ckks.params.effective_level
        assert np.abs(ckks.decrypt_decode(boosted) - a).max() < TOLERANCE

    def test_bootstrap_rejects_out_of_range(self, ckks):
        big = np.full(ckks.slot_count, 3.0)
        ct = ckks.encode_encrypt(big)
        with pytest.raises(ValueError):
            ckks.bootstrap(ct)

    def test_computation_continues_after_bootstrap(self, ckks, data):
        a, _ = data
        ct = ckks.level_down(ckks.encode_encrypt(a), 0)
        boosted = ckks.bootstrap(ct)
        pt = ckks.encode(np.full(ckks.slot_count, 0.5), level=boosted.level)
        out = ckks.rescale(ckks.mul_plain(boosted, pt))
        assert np.abs(ckks.decrypt_decode(out) - 0.5 * a).max() < TOLERANCE


class TestKeyManagement:
    def test_rotation_keys_cached(self, ckks):
        before = ckks.keys.num_rotation_keys()
        ckks.generate_rotation_keys([3, 3, 3])
        after = ckks.keys.num_rotation_keys()
        assert after <= before + 1

    def test_public_key_encryption_differs_from_plain(self, ckks, data):
        """Two encryptions of the same message differ (semantic security)."""
        a, _ = data
        c1 = ckks.encode_encrypt(a)
        c2 = ckks.encode_encrypt(a)
        assert not np.array_equal(c1.c0.data, c2.c0.data)
