"""Integration tests: orion networks through compile + FHE execution.

These are the repository's strongest guarantees: the compiled FHE
program must reproduce the cleartext network output on both backends,
with levels, scales, and bootstraps all enforced exactly.
"""

import numpy as np
import pytest
from fractions import Fraction

import repro.orion.nn as on
from repro.backend import SimBackend, ToyBackend
from repro.ckks.params import paper_parameters, toy_parameters
from repro.models import LolaCnn, SecureMlp, resnet_cifar, silu_act
from repro.models.resnet import BasicBlock
from repro.nn import init
from repro.orion import OrionNetwork


@pytest.fixture(scope="module")
def params():
    return paper_parameters()


def make_net(builder, shape, seed=0, calib_scale=0.5):
    init.seed_init(seed)
    net = builder()
    rng = np.random.default_rng(seed)
    onet = OrionNetwork(net, shape)
    onet.fit([rng.normal(0, calib_scale, (8,) + shape)])
    return onet, rng


class TestMnistNetworks:
    def test_mlp_depth_matches_paper(self, params):
        onet, _ = make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        compiled = onet.compile(params)
        assert compiled.multiplicative_depth == 5  # paper Table 2
        assert compiled.num_bootstraps == 0

    def test_mlp_fhe_matches_cleartext(self, params):
        onet, rng = make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        compiled = onet.compile(params)
        img = rng.normal(0, 0.5, (1, 8, 8))
        clear = onet.forward_cleartext(img)
        fhe = compiled.run(SimBackend(params, seed=1), img)
        assert OrionNetwork.precision_bits(fhe, clear) > 8
        assert fhe.argmax() == clear.argmax()

    def test_lola_depth_five(self, params):
        onet, _ = make_net(lambda: LolaCnn(image_size=16, channels=3), (1, 16, 16))
        compiled = onet.compile(params)
        # Single-shot multiplexing: conv-act-conv-act-fc = 5 levels
        # (the Fhelipe baseline needs 10; paper Section 8.1).
        assert compiled.multiplicative_depth == 5

    def test_lola_on_exact_toy_backend(self):
        tparams = toy_parameters(ring_degree=1024, max_level=6, boot_levels=1)
        onet, rng = make_net(lambda: LolaCnn(image_size=8, channels=2), (1, 8, 8))
        compiled = onet.compile(tparams)
        img = rng.normal(0, 0.5, (1, 8, 8))
        clear = onet.forward_cleartext(img)
        fhe = compiled.run(ToyBackend(tparams, seed=2), img)
        # Real RNS-CKKS at toy precision: several bits of agreement.
        # (Untrained logits sit within noise of each other, so argmax is
        # not asserted here; the trained examples check it.)
        assert OrionNetwork.precision_bits(fhe, clear) > 3


class TestResNetCompilation:
    @pytest.fixture(scope="class")
    def compiled_resnet(self, params):
        onet, rng = make_net(
            lambda: resnet_cifar(8, act=silu_act(31), width=4),
            (3, 8, 8), seed=3,
        )
        return onet, rng, onet.compile(params)

    def test_bootstraps_placed(self, compiled_resnet):
        _, _, compiled = compiled_resnet
        assert compiled.num_bootstraps > 0

    def test_fhe_matches_cleartext(self, compiled_resnet):
        onet, rng, compiled = compiled_resnet
        img = rng.normal(0, 0.5, (3, 8, 8))
        clear = onet.forward_cleartext(img)
        backend = SimBackend(paper_parameters(), seed=5)
        fhe = compiled.run(backend, img)
        assert np.abs(fhe - clear).max() < 0.05
        assert backend.ledger.bootstraps == compiled.num_bootstraps

    def test_packed_cleartext_isolates_approximation(self, compiled_resnet):
        """Packed (noise-free) execution differs from the exact forward
        only by the polynomial activation approximation."""
        onet, rng, compiled = compiled_resnet
        img = rng.normal(0, 0.5, (3, 8, 8))
        packed = compiled.program.run_cleartext_packed(img)
        backend = SimBackend(paper_parameters(), seed=6, noise_free=True)
        fhe = compiled.run(backend, img)
        assert np.abs(packed - fhe).max() < 1e-6

    def test_scale_invariant_delta_between_layers(self, compiled_resnet):
        """Errorless scale management: linear-layer outputs sit at
        exactly Delta (paper Figure 7)."""
        onet, rng, compiled = compiled_resnet
        img = rng.normal(0, 0.5, (3, 8, 8))
        backend = SimBackend(paper_parameters(), seed=7)
        from repro.core.program import ExecutionState, LinearInstr

        state = ExecutionState(backend)
        vectors = compiled.program.input_layout.pack(img / compiled.program.input_norm)
        state.set(
            compiled.program.input_uid,
            [
                backend.encrypt(backend.encode(v, compiled.program.entry_level,
                                               backend.params.scale))
                for v in vectors
            ],
        )
        delta = Fraction(backend.params.scale)
        for instr in compiled.program.instructions:
            instr.execute(state)
            if isinstance(instr, LinearInstr):
                for ct in state.get(instr.out_uid):
                    assert backend.scale_of(ct) == delta

    def test_rotation_counts_match_ledger(self, compiled_resnet):
        onet, rng, compiled = compiled_resnet
        backend = SimBackend(paper_parameters(), seed=8)
        compiled.run(backend, rng.normal(0, 0.5, (3, 8, 8)))
        assert backend.ledger.rotations == compiled.total_rotations


class TestReluNetworks:
    def test_relu_composite_network(self, params):
        onet, rng = make_net(
            lambda: BasicBlock(2, 2, 1, act=lambda: on.ReLU(degrees=(15, 15))),
            (2, 8, 8), seed=9,
        )
        compiled = onet.compile(params)
        img = rng.normal(0, 0.5, (2, 8, 8))
        clear = onet.forward_cleartext(img)
        fhe = compiled.run(SimBackend(params, seed=10), img)
        # ReLU approximation error dominates; still close.
        assert np.abs(fhe - clear).max() < 0.1

    def test_strided_block_gap_tracking(self, params):
        onet, rng = make_net(
            lambda: BasicBlock(2, 4, 2, act=lambda: on.Square()),
            (2, 8, 8), seed=11, calib_scale=0.3,
        )
        compiled = onet.compile(params)
        img = rng.normal(0, 0.3, (2, 8, 8))
        clear = onet.forward_cleartext(img)
        packed = compiled.program.run_cleartext_packed(img)
        assert np.abs(packed - clear).max() < 1e-9


class TestAnalyzeMode:
    def test_analyze_matches_materialize_counts(self, params):
        onet, _ = make_net(
            lambda: resnet_cifar(8, act=silu_act(31), width=4), (3, 8, 8), seed=3
        )
        materialized = onet.compile(params)
        analyzed = onet.compile(params, mode="analyze")
        assert analyzed.program is None
        # Conv counts must agree exactly; only the final FC is
        # approximated in analyze mode.
        conv_rots_m = sum(
            r.rotations for r in materialized.layer_reports if "fc" not in r.name
        )
        conv_rots_a = sum(
            r.rotations for r in analyzed.layer_reports if "fc" not in r.name
        )
        assert conv_rots_a == conv_rots_m
        assert analyzed.num_bootstraps == materialized.num_bootstraps

    def test_analyze_cannot_run(self, params):
        onet, _ = make_net(lambda: SecureMlp(64, 8), (1, 8, 8))
        compiled = onet.compile(params, mode="analyze")
        with pytest.raises(RuntimeError):
            compiled.run(SimBackend(params), np.zeros((1, 8, 8)))


class TestRangeEstimation:
    def test_values_stay_in_unit_range(self, params):
        """After fit(), every bootstrap input is within [-1, 1] — the
        executor would raise otherwise.  Use wide inputs to stress."""
        onet, rng = make_net(
            lambda: resnet_cifar(8, act=silu_act(31), width=4),
            (3, 8, 8), seed=13, calib_scale=2.0,
        )
        compiled = onet.compile(params)
        img = rng.normal(0, 2.0, (3, 8, 8))
        fhe = compiled.run(SimBackend(params, seed=14), img)  # must not raise
        clear = onet.forward_cleartext(img)
        assert np.abs(fhe - clear).max() < 0.2

    def test_without_fit_small_nets_still_compile(self, params):
        init.seed_init(15)
        net = SecureMlp(input_pixels=16, hidden=8)
        onet = OrionNetwork(net, (1, 4, 4))
        compiled = onet.compile(params)  # no calibration
        assert compiled.multiplicative_depth == 5
