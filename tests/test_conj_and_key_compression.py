"""Tests for the shared hoisted conjugation and switching-key compression.

Two tentpole mechanisms of the end-to-end bootstrap fast path:

- **shared conjugation**: a conjugation-composed Galois element
  ``("conj", k)`` rides the same key-switch digit decomposition as
  plain rotations (``CkksContext.rotate_hoisted_raw``), so the
  bootstrap CoeffToSlot pays one extra inner product instead of a
  standalone key switch.  The raw accumulator plus the shared mod-down
  must reproduce the standalone key switch **bit for bit** on the exact
  backend — at ``ks_alpha = 1`` and at a grouped configuration whose
  transform level leaves a *partial* last digit group.
- **key compression**: grouped-digit switching keys store only the
  digits and limbs a key switch at their recorded maximum level
  consumes (``SwitchingKey.max_level``).  Restriction-based compression
  must be bit-identical to the full key at every covered level, fail
  loudly above its bound, and measurably shrink stored key material —
  including through the serving path (``KeyManifest`` level bounds ->
  ``KeyRegistry`` eager compressed keygen).
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.backend import SimBackend, ToyBackend
from repro.ckks.bootstrap import CkksBootstrapper
from repro.ckks.galois import galois_offset_key
from repro.ckks.keys import KeyManifest
from repro.ckks.params import bootstrap_parameters, toy_parameters

BOOT_PARAM_SETS = {
    # alpha2's transform levels have an odd limb count, so the last
    # key-switch digit group is partial.
    "alpha1": dict(ring_degree=64),
    "alpha2": dict(ring_degree=64, ks_alpha=2),
}


@pytest.fixture(scope="module", params=sorted(BOOT_PARAM_SETS))
def boot_setup(request):
    params = bootstrap_parameters(**BOOT_PARAM_SETS[request.param])
    backend = ToyBackend(params, seed=7)
    bs = CkksBootstrapper(backend, fused=True)
    rng = np.random.default_rng(3)
    message = rng.uniform(-0.9, 0.9, params.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    raised = bs._prescale(
        backend.context.mod_raise(ct, Fraction(bs.q0) * bs.window)
    )
    return params, backend, bs, message, ct, raised


class TestSharedConjugation:
    def test_conj_raw_bitwise_equals_standalone_keyswitch(self, boot_setup):
        """moddown(raw ("conj", 0) accumulator) == context.conjugate,
        bit for bit: the shared decomposition performs the identical
        exact modular arithmetic, just hoisted."""
        params, backend, bs, _, _, raised = boot_setup
        ctx = backend.context
        for level in (backend.level_of(raised), backend.level_of(raised) - 1):
            ct = backend.level_down(raised, level)
            rot0, acc = ctx.rotate_hoisted_raw(ct, [("conj", 0)])[("conj", 0)]
            p0, p1 = ctx._ks_moddown(acc, level)
            ref = ctx.conjugate(ct)
            assert np.array_equal((rot0 + p0).data, ref.c0.data)
            assert np.array_equal(p1.data, ref.c1.data)

    def test_composed_conj_rotation_bitwise_equals_standalone(self, boot_setup):
        """("conj", k) == the standalone key switch of the *composed*
        Galois element (one automorphism, exponent conj * 5^k)."""
        params, backend, bs, _, _, raised = boot_setup
        ctx = backend.context
        level = backend.level_of(raised)
        for k in (1, 3, params.slot_count // 2):
            offset = ("conj", k)
            rot0, acc = ctx.rotate_hoisted_raw(raised, [offset])[offset]
            p0, p1 = ctx._ks_moddown(acc, level)
            exponent = ctx.galois_offset_exponent(offset)
            ref = ctx._apply_galois(raised, exponent)
            assert np.array_equal((rot0 + p0).data, ref.c0.data)
            assert np.array_equal(p1.data, ref.c1.data)

    def test_composed_element_semantics(self, boot_setup):
        """("conj", k) really is conjugate-then-rotate at the slot level."""
        params, backend, bs, _, _, _ = boot_setup
        ctx = backend.context
        rng = np.random.default_rng(5)
        vals = rng.uniform(-1, 1, params.slot_count)
        ct = backend.encode_encrypt(vals, level=2)
        offset = ("conj", 3)
        rot0, acc = ctx.rotate_hoisted_raw(ct, [offset])[offset]
        p0, p1 = ctx._ks_moddown(acc, 2)
        composed = type(ct)(
            c0=rot0 + p0, c1=p1, level=2, scale=ct.scale, slot_count=ct.slot_count
        )
        two_step = ctx.rotate(ctx.conjugate(ct), 3)
        # Real slots: conjugation is the identity on the decoded values.
        assert np.abs(
            backend.decrypt(composed) - np.roll(vals, -3)
        ).max() < 1e-3
        assert np.abs(
            backend.decrypt(composed) - backend.decrypt(two_step)
        ).max() < 1e-3

    def test_shared_cts_bitwise_equals_per_element_reference(self, boot_setup):
        """The one-call shared CoeffToSlot == a per-element reference
        paying a fresh decomposition per Galois element (conjugation
        included), bit for bit — exact modular arithmetic is
        order-independent."""
        params, backend, bs, _, _, raised = boot_setup
        ctx = backend.context
        level = backend.level_of(raised)
        rescale_prime = params.primes[level]
        pt_scale = (
            Fraction(params.primes[level - 1]) * rescale_prime / raised.scale
        )
        lo, hi = bs._coeff_to_slot_shared(raised, pt_scale)

        plan = bs._shared_cts_plan()
        ks_chain = ctx._ks_chain(level)
        mod_ks = ctx.basis.moduli_column(ks_chain)
        data_primes = ctx._data_chain(level)
        mod_q = ctx.basis.moduli_column(data_primes)
        for bo, got in enumerate((lo, hi)):
            acc_ext = np.zeros(
                (2, len(ks_chain), ctx.basis.ring_degree), dtype=np.int64
            )
            acc_c0 = np.zeros(
                (len(data_primes), ctx.basis.ring_degree), dtype=np.int64
            )
            acc_c1 = None
            keys = sorted(
                (key for key in plan["terms"] if key[0] == bo),
                key=lambda key: (key[1], galois_offset_key(key[2])),
            )
            for (_, _, off) in keys:
                pt = ctx.encode(
                    plan["terms"][(bo, 0, off)], level=level, scale=pt_scale
                )
                if off == 0:
                    acc_c0 = (acc_c0 + pt.poly.data * raised.c0.data) % mod_q
                    if acc_c1 is None:
                        acc_c1 = np.zeros_like(acc_c0)
                    acc_c1 = (acc_c1 + pt.poly.data * raised.c1.data) % mod_q
                    continue
                rot0, acc = ctx.rotate_hoisted_raw(raised, [off])[off]
                pt_ext = pt.poly.extend_primes_reference(ks_chain).data
                acc_ext = (acc_ext + pt_ext * acc) % mod_ks
                acc_c0 = (acc_c0 + pt.poly.data * rot0.data) % mod_q
            p0, p1 = ctx._ks_moddown(acc_ext, level)
            c0 = (acc_c0 + p0.data) % mod_q
            c1 = (acc_c1 + p1.data) % mod_q
            rescaled = ctx.basis.divide_round_last(
                np.stack([c0, c1]), data_primes, is_ntt=True
            )
            assert np.array_equal(got.c0.data, rescaled[0]), bo
            assert np.array_equal(got.c1.data, rescaled[1]), bo

    def test_full_bootstrap_shared_matches_pre_sharing(self, boot_setup):
        """Same rotation accounting, same contract, same precision as
        the pre-sharing fused pipeline."""
        params, backend, bs, message, ct, _ = boot_setup
        pre = CkksBootstrapper(
            backend, fused=True, shared_conjugation=False,
            cache_eval_consts=False,
        )
        backend.ledger.reset()
        out_s = bs.bootstrap(ct)
        rots_shared = backend.ledger.rotations
        hrot_standalone = backend.ledger.counts["hrot"]
        backend.ledger.reset()
        out_p = pre.bootstrap(ct)
        assert backend.ledger.rotations == rots_shared
        # The shared pipeline performs no standalone rotation at all —
        # the conjugation is an accounting rotation riding the hoisted
        # decomposition.
        assert hrot_standalone == 0
        assert backend.ledger.counts["hrot"] == 1  # pre-PR pays the conj
        assert out_s.level == out_p.level
        assert out_s.scale == out_p.scale == Fraction(params.scale)
        got_s, got_p = backend.decrypt(out_s), backend.decrypt(out_p)
        assert np.abs(got_s - message).mean() < 2.0**-7
        assert np.abs(got_s - got_p).max() < 2.0**-6

    def test_sim_backend_conj_offsets(self):
        """The simulator accepts conjugation-composed offsets with the
        fused noise model (identity on real slots, still a key switch)."""
        params = toy_parameters(ring_degree=256, max_level=5)
        sim = SimBackend(params, seed=9)
        assert sim.supports_shared_conjugation
        vals = np.linspace(-1, 1, params.slot_count)
        ct = sim.encode_encrypt(vals)
        ones = np.ones(params.slot_count)
        terms = {(0, 0, ("conj", 4)): ones, (0, 0, 2): ones}
        (out,) = sim.matvec_fused([ct], terms, 1, Fraction(params.scale))
        expected = np.roll(vals, -4) + np.roll(vals, -2)
        assert np.abs(sim.decrypt(out) - expected).max() < 1e-2
        assert out.noise_std > ct.noise_std  # two inner products + moddown
        conj = sim.conjugate(ct)
        assert np.abs(sim.decrypt(conj) - vals).max() < 1e-2


LEVELED_PARAMS = {
    "alpha1": dict(ring_degree=256, max_level=8),
    # Two-limb digits with two special primes; compressed bounds below
    # leave partial digit groups at odd limb counts.
    "alpha2": dict(
        ring_degree=256, max_level=8, ks_alpha=2, num_special_primes=2
    ),
}


@pytest.fixture(scope="module", params=sorted(LEVELED_PARAMS))
def key_setup(request):
    params = toy_parameters(**LEVELED_PARAMS[request.param])
    backend = ToyBackend(params, seed=11)
    vals = np.linspace(-1, 1, params.slot_count)
    return params, backend, vals


class TestKeyCompression:
    def test_restricted_key_bitwise_at_covered_levels(self, key_setup):
        """Compressing an existing key never changes a covered key
        switch: restriction keeps exactly the rows the use-time tensor
        extraction selects (partial last digit groups included)."""
        params, backend, vals = key_setup
        ctx = backend.context
        exp = ctx.encoder.rotation_exponent(5)
        bound = 4
        refs = {}
        for level in range(bound + 1):
            ct = backend.encode_encrypt(vals, level=level)
            refs[level] = (ct, ctx.rotate(ct, 5))
        full_size = ctx.galois_key(exp).size_bytes()
        key = ctx.generate_compressed_galois_key(exp, bound)
        assert key.max_level == bound
        assert key.size_bytes() < full_size
        for level, (ct, ref) in refs.items():
            got = ctx.rotate(ct, 5)
            assert np.array_equal(got.c0.data, ref.c0.data), level
            assert np.array_equal(got.c1.data, ref.c1.data), level

    def test_compressed_key_fails_loudly_above_bound(self, key_setup):
        params, backend, vals = key_setup
        ctx = backend.context
        exp = ctx.encoder.rotation_exponent(7)
        key = ctx.generate_compressed_galois_key(exp, 2)
        ct = backend.encode_encrypt(vals, level=5)
        with pytest.raises(ValueError, match="compressed to level 2"):
            ctx._keyswitch(ct.c1, key, 5)

    def test_compressed_key_widens_on_larger_bound(self, key_setup):
        """A second program recording a *wider* bound for the same step
        must get a covering key, not a ValueError from trying to
        restrict the narrower cached one."""
        params, backend, vals = key_setup
        ctx = backend.context
        exp = ctx.encoder.rotation_exponent(11)
        narrow = ctx.generate_compressed_galois_key(exp, 2)
        wide = ctx.generate_compressed_galois_key(exp, 4)
        assert wide.max_level == 4
        assert wide.size_bytes() > narrow.size_bytes()
        ct = backend.encode_encrypt(vals, level=4)
        got = backend.decrypt(ctx.rotate(ct, 11))
        assert np.abs(got - np.roll(vals, -11)).max() < 1e-2

    def test_galois_key_upgrades_outgrown_compressed_key(self, key_setup):
        """The lazy evaluator path never uses an undersized key: a
        rotation above the bound regenerates a covering key."""
        params, backend, vals = key_setup
        ctx = backend.context
        exp = ctx.encoder.rotation_exponent(9)
        ctx.generate_compressed_galois_key(exp, 1)
        ct = backend.encode_encrypt(vals, level=6)
        got = backend.decrypt(ctx.rotate(ct, 9))
        assert np.abs(got - np.roll(vals, -9)).max() < 1e-2
        assert ctx.keys.galois[exp].covers(6)

    def test_grouped_compression_shrinks_key_memory(self):
        """The headline memory claim: a grouped-digit key bounded at a
        low level stores a small fraction of the full-chain pairs
        (dropped digit groups x dropped limbs per digit)."""
        params = bootstrap_parameters(ring_degree=64, ks_alpha=2)
        backend = ToyBackend(params, seed=3)
        ctx = backend.context
        exp = ctx.encoder.rotation_exponent(1)
        full = ctx.galois_key(exp)
        full_size = full.size_bytes()
        # STC-like level near the chain bottom: 3 of 16 limbs survive.
        compressed = ctx.generate_compressed_galois_key(exp, 2)
        assert compressed.size_bytes() * 4 < full_size
        # Digits: ceil(14/2)=7 -> ceil(3/2)=2; limbs: 16 -> 5.
        assert len(compressed.pairs) == 2
        assert len(compressed.pairs[0][0].primes) == 3 + len(
            params.special_primes
        )

    def test_registry_generates_compressed_keys_from_manifest(self):
        """Manifest level bounds -> eager *compressed* keygen, smaller
        stored key material than the level-less manifest, same results."""
        from repro.serve.keys import KeyRegistry

        params = toy_parameters(ring_degree=256, max_level=6, ks_alpha=2,
                                num_special_primes=2)
        steps = (1, 4, 16)
        bounds = {1: 3, 4: 3, 16: 5}

        def manifest(levels):
            return KeyManifest(
                params_dict={
                    "ring_degree": params.ring_degree,
                    "scale_bits": params.scale_bits,
                    "max_level": params.max_level,
                    "first_prime_bits": params.first_prime_bits,
                    "prime_bits": params.prime_bits,
                    "special_prime_bits": params.special_prime_bits,
                    "boot_levels": params.boot_levels,
                    "ring_type": params.ring_type.value,
                    "sigma": params.sigma,
                    "num_special_primes": params.num_special_primes,
                    "ks_alpha": params.ks_alpha,
                    "secret_hamming_weight": params.secret_hamming_weight,
                    "primes": list(params.primes),
                },
                rotation_steps=steps,
                rotation_step_levels=levels,
            )

        compressed_reg = KeyRegistry(
            manifest(tuple(bounds[s] for s in steps)), max_clients=2
        )
        full_reg = KeyRegistry(manifest(()), max_clients=2)
        b_comp = compressed_reg.backend_for("tenant-a")
        b_full = full_reg.backend_for("tenant-a")
        assert compressed_reg.key_material_bytes(
            "tenant-a"
        ) < full_reg.key_material_bytes("tenant-a")
        for step, bound in bounds.items():
            exp = b_comp.context.encoder.rotation_exponent(step)
            assert b_comp.context.keys.galois[exp].max_level == bound
            assert b_full.context.keys.galois[exp].max_level is None
        # Compressed keys serve their covered levels correctly.
        vals = np.linspace(-1, 1, params.slot_count)
        ct = b_comp.encode_encrypt(vals, level=3)
        got = b_comp.decrypt(b_comp.rotate(ct, 4))
        assert np.abs(got - np.roll(vals, -4)).max() < 1e-2

    def test_manifest_step_levels_round_trip(self):
        manifest = KeyManifest(
            params_dict={"ring_degree": 64},
            rotation_steps=(1, 2, 8),
            rotation_step_levels=(4, 4, 6),
        )
        again = KeyManifest.from_dict(manifest.to_dict())
        assert again.rotation_step_levels == (4, 4, 6)
        assert again.step_level_map() == {1: 4, 2: 4, 8: 6}
        legacy = KeyManifest.from_dict(
            {
                "params": {"ring_degree": 64},
                "rotation_steps": [1, 2],
                "needs_conjugation": False,
            }
        )
        assert legacy.step_level_map() == {}
