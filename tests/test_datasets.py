"""Tests for the synthetic dataset generators."""

import numpy as np

from repro.datasets import (
    DataLoader,
    cifar_like,
    mnist_like,
    tiny_imagenet_like,
    voc_like,
)


class TestClassificationGenerators:
    def test_shapes(self):
        assert mnist_like(8).images.shape == (8, 1, 28, 28)
        assert cifar_like(8).images.shape == (8, 3, 32, 32)
        assert tiny_imagenet_like(4).images.shape == (4, 3, 64, 64)

    def test_determinism(self):
        a = cifar_like(16, seed=5)
        b = cifar_like(16, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        assert not np.array_equal(
            cifar_like(16, seed=1).images, cifar_like(16, seed=2).images
        )

    def test_value_range(self):
        imgs = cifar_like(32).images
        assert np.abs(imgs).max() <= 1.0 + 1e-9

    def test_labels_cover_classes(self):
        labels = mnist_like(512).labels
        assert set(np.unique(labels)) == set(range(10))

    def test_split(self):
        data = mnist_like(100)
        train, test = data.split(0.8)
        assert len(train) == 80 and len(test) == 20

    def test_classes_are_separable_by_template_matching(self):
        """Nearest-template classification should beat chance easily —
        the datasets must be learnable for training to mean anything."""
        data = cifar_like(200, seed=0)
        train, test = data.split(0.5)
        templates = np.stack(
            [
                train.images[train.labels == c].mean(axis=0)
                for c in range(data.num_classes)
            ]
        )
        flat_test = test.images.reshape(len(test), -1)
        flat_templates = templates.reshape(data.num_classes, -1)
        distance = ((flat_test[:, None] - flat_templates[None]) ** 2).sum(axis=2)
        accuracy = (distance.argmin(axis=1) == test.labels).mean()
        assert accuracy > 0.5


class TestDetectionGenerator:
    def test_shapes_and_annotations(self):
        data = voc_like(num_samples=4, image_size=128, seed=0)
        assert data.images.shape == (4, 3, 128, 128)
        assert len(data.annotations) == 4
        for boxes in data.annotations:
            assert 1 <= len(boxes) <= 3
            for cls, cx, cy, w, h in boxes:
                assert 0 <= cls < 20
                assert 0.0 < cx < 1.0 and 0.0 < cy < 1.0
                assert 0.0 < w <= 1.0 and 0.0 < h <= 1.0

    def test_objects_brighter_than_background(self):
        data = voc_like(num_samples=2, image_size=128, seed=1)
        img = data.images[0]
        cls, cx, cy, w, h = data.annotations[0][0]
        x0 = int((cx - w / 2) * 128)
        y0 = int((cy - h / 2) * 128)
        side = int(w * 128)
        inside = np.abs(img[:, y0 : y0 + side, x0 : x0 + side]).mean()
        overall = np.abs(img).mean()
        assert inside > overall


class TestDataLoader:
    def test_batches_cover_dataset(self):
        data = mnist_like(50)
        loader = DataLoader(data, batch_size=16, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == 50
        assert len(loader) == 4

    def test_shuffling_changes_order(self):
        data = mnist_like(64)
        first = next(iter(DataLoader(data, batch_size=64, shuffle=True, seed=1)))[1]
        second = next(iter(DataLoader(data, batch_size=64, shuffle=True, seed=2)))[1]
        assert not np.array_equal(first, second)
