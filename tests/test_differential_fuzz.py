"""Differential fuzzing: toy backend vs simulator vs numpy mirror.

Random homomorphic programs are executed simultaneously on the exact
RNS-CKKS toy backend and the noise-free functional simulator while a
numpy mirror tracks the true slot values.  At every step all three must
agree — values within tolerance, levels exactly, scales as *identical*
``Fraction`` objects.  This is the strongest cross-validation of the
DESIGN.md substitution argument: the simulator that executes the
paper-scale benchmarks has the same semantics as the real arithmetic.

Also here: algebraic laws of the Galois machinery (rotation composition,
conjugation involution, linearity) that individual op tests don't pin.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.sim import SimBackend
from repro.backend.toy import ToyBackend
from repro.ckks.params import CkksParameters

# A wide scale (2^26) and two special primes keep encryption and hybrid
# key-switch noise far below the tolerances asserted here, so the tests
# pin semantics, not noise.
PARAMS = CkksParameters(
    ring_degree=256,
    scale_bits=26,
    max_level=8,
    boot_levels=3,
    first_prime_bits=29,
    special_prime_bits=29,
    num_special_primes=2,
)
N_SLOTS = PARAMS.slot_count


@pytest.fixture(scope="module")
def toy():
    return ToyBackend(PARAMS, seed=11)


@pytest.fixture(scope="module")
def sim():
    return SimBackend(PARAMS, seed=11, noise_free=True)


class _Mirror:
    """One value tracked on both backends plus the cleartext truth."""

    def __init__(self, toy, sim, values, level):
        self.toy_backend = toy
        self.sim_backend = sim
        self.clear = np.asarray(values, dtype=np.float64)
        self.toy = toy.encrypt(toy.encode(values, level, PARAMS.scale))
        self.sim = sim.encrypt(sim.encode(values, level, PARAMS.scale))

    # -- invariants ------------------------------------------------------
    def check(self, toy_tol=1e-3, sim_tol=1e-9):
        assert self.toy.level == self.sim.level
        assert self.toy.scale == self.sim.scale, "scales diverged"
        toy_vals = self.toy_backend.decrypt(self.toy)[:N_SLOTS]
        sim_vals = self.sim_backend.decrypt(self.sim)[:N_SLOTS]
        scale = max(1.0, np.abs(self.clear).max())
        assert np.abs(sim_vals - self.clear).max() < sim_tol * scale
        assert np.abs(toy_vals - self.clear).max() < toy_tol * scale

    # -- mirrored operations -----------------------------------------------
    def rotate(self, steps):
        self.toy = self.toy_backend.rotate(self.toy, steps)
        self.sim = self.sim_backend.rotate(self.sim, steps)
        self.clear = np.roll(self.clear, -steps)

    def negate(self):
        self.toy = self.toy_backend.negate(self.toy)
        self.sim = self.sim_backend.negate(self.sim)
        self.clear = -self.clear

    def add_fresh(self, values):
        level, scale = self.toy.level, self.toy.scale
        self.toy = self.toy_backend.add(
            self.toy, self.toy_backend.encrypt(self.toy_backend.encode(values, level, scale))
        )
        self.sim = self.sim_backend.add(
            self.sim, self.sim_backend.encrypt(self.sim_backend.encode(values, level, scale))
        )
        self.clear = self.clear + values

    def pmult_rescale(self, values):
        """Errorless-style PMult: plaintext at the prime scale."""
        level = self.toy.level
        prime = Fraction(PARAMS.data_primes[level])
        self.toy = self.toy_backend.rescale(
            self.toy_backend.mul_plain(self.toy, self.toy_backend.encode(values, level, prime))
        )
        self.sim = self.sim_backend.rescale(
            self.sim_backend.mul_plain(self.sim, self.sim_backend.encode(values, level, prime))
        )
        self.clear = self.clear * values

    def square_rescale(self):
        self.toy = self.toy_backend.rescale(self.toy_backend.mul(self.toy, self.toy))
        self.sim = self.sim_backend.rescale(self.sim_backend.mul(self.sim, self.sim))
        self.clear = self.clear**2

    def hmult_fresh_rescale(self, values):
        level, scale = self.toy.level, self.toy.scale
        self.toy = self.toy_backend.rescale(
            self.toy_backend.mul(
                self.toy, self.toy_backend.encrypt(self.toy_backend.encode(values, level, scale))
            )
        )
        self.sim = self.sim_backend.rescale(
            self.sim_backend.mul(
                self.sim, self.sim_backend.encrypt(self.sim_backend.encode(values, level, scale))
            )
        )
        self.clear = self.clear * values

    def level_down(self, target):
        self.toy = self.toy_backend.level_down(self.toy, target)
        self.sim = self.sim_backend.level_down(self.sim, target)


OPS = ("rotate", "negate", "add_fresh", "pmult", "square", "hmult", "level_down")


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=12, deadline=None)
def test_random_programs_agree(seed):
    """The core differential fuzz: ~L random ops, three-way agreement."""
    rng = np.random.default_rng(seed)
    toy = ToyBackend(PARAMS, seed=11)
    sim = SimBackend(PARAMS, seed=11, noise_free=True)
    mirror = _Mirror(toy, sim, rng.uniform(-0.9, 0.9, N_SLOTS), PARAMS.max_level)
    mirror.check()
    while mirror.toy.level > 1:
        op = rng.choice(OPS)
        if op == "rotate":
            mirror.rotate(int(rng.integers(1, N_SLOTS)))
        elif op == "negate":
            mirror.negate()
        elif op == "add_fresh":
            mirror.add_fresh(rng.uniform(-0.5, 0.5, N_SLOTS))
        elif op == "pmult":
            mirror.pmult_rescale(rng.uniform(-1.0, 1.0, N_SLOTS))
        elif op == "square":
            if np.abs(mirror.clear).max() > 1.2:
                continue  # keep values bounded
            mirror.square_rescale()
        elif op == "hmult":
            mirror.hmult_fresh_rescale(rng.uniform(-1.0, 1.0, N_SLOTS))
        elif op == "level_down":
            if mirror.toy.level > 2:
                mirror.level_down(mirror.toy.level - 1)
        mirror.check()


def test_scales_stay_identical_through_mixed_chain(toy, sim):
    """Scale metadata is bit-identical across backends for a fixed chain."""
    rng = np.random.default_rng(0)
    mirror = _Mirror(toy, sim, rng.uniform(-0.5, 0.5, N_SLOTS), PARAMS.max_level)
    mirror.square_rescale()
    mirror.pmult_rescale(rng.uniform(-1, 1, N_SLOTS))
    mirror.hmult_fresh_rescale(rng.uniform(-1, 1, N_SLOTS))
    assert isinstance(mirror.toy.scale, Fraction)
    assert mirror.toy.scale == mirror.sim.scale
    # After one errorless pmult the scale is *exactly* Delta again only
    # when the chain primes equal Delta; here they differ slightly, and
    # both backends must agree on the exact rational value.
    assert mirror.toy.scale.denominator >= 1


# ---------------------------------------------------------------------------
# Galois algebra laws (exact backend)
# ---------------------------------------------------------------------------
class TestGaloisLaws:
    @given(
        st.integers(min_value=0, max_value=N_SLOTS - 1),
        st.integers(min_value=0, max_value=N_SLOTS - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_rotation_composition(self, j, k):
        toy = ToyBackend(PARAMS, seed=11)
        values = np.arange(N_SLOTS, dtype=np.float64) / N_SLOTS
        ct = toy.encode_encrypt(values, level=2)
        double = toy.rotate(toy.rotate(ct, j), k)
        single = toy.rotate(ct, (j + k) % N_SLOTS)
        got = toy.decrypt(double)
        want = toy.decrypt(single)
        assert np.abs(got - want).max() < 1e-4

    def test_full_rotation_is_identity(self, toy):
        values = np.arange(N_SLOTS, dtype=np.float64) / N_SLOTS
        ct = toy.encode_encrypt(values, level=2)
        assert np.abs(toy.decrypt(toy.rotate(ct, N_SLOTS)) - values).max() < 1e-4

    def test_conjugation_is_involution(self, toy):
        values = np.random.default_rng(3).uniform(-1, 1, N_SLOTS)
        ct = toy.encode_encrypt(values, level=2)
        twice = toy.conjugate(toy.conjugate(ct))
        assert np.abs(toy.decrypt(twice) - values).max() < 1e-4

    def test_rotation_is_linear(self, toy):
        rng = np.random.default_rng(5)
        a, b = rng.uniform(-1, 1, N_SLOTS), rng.uniform(-1, 1, N_SLOTS)
        ct_a = toy.encode_encrypt(a, level=2)
        ct_b = toy.encode_encrypt(b, level=2)
        lhs = toy.decrypt(toy.rotate(toy.add(ct_a, ct_b), 5))
        rhs = toy.decrypt(toy.add(toy.rotate(ct_a, 5), toy.rotate(ct_b, 5)))
        assert np.abs(lhs - rhs).max() < 1e-4

    def test_rotation_commutes_with_pmult_of_rotated_plaintext(self, toy):
        """rot_k(pt * ct) == rot_k(pt) * rot_k(ct): the identity behind
        BSGS diagonal pre-rotation."""
        rng = np.random.default_rng(7)
        vec = rng.uniform(-1, 1, N_SLOTS)
        diag = rng.uniform(-1, 1, N_SLOTS)
        level = 3
        ct = toy.encode_encrypt(vec, level=level)
        pt = toy.encode(diag, level, PARAMS.scale)
        lhs = toy.decrypt(toy.rotate(toy.mul_plain(ct, pt), 9))
        pt_rot = toy.encode(np.roll(diag, -9), level, PARAMS.scale)
        rhs = toy.decrypt(toy.mul_plain(toy.rotate(ct, 9), pt_rot))
        assert np.abs(lhs - rhs).max() < 1e-3
