"""Tests for grouped digit decomposition (dnum) and the fused matvec.

Covers the three layers of the true-double-hoisting rebuild:

- grouped key-switch digits (``ks_alpha > 1`` with a wider special
  basis), asserted bit-exact against a per-digit big-integer reference;
- the raw hoisted-rotation primitive (``rotate_hoisted_raw``), whose
  deferred accumulators must reproduce ``rotate_hoisted`` bit-for-bit
  once mod-down is applied;
- the fused BSGS matvec (Q_l * P-lazy accumulation, one mod-down per
  output block), asserted bit-exact against an independent slow
  reference of the same deferred-mod-down math, and numerically against
  the unfused pipeline and the cleartext reference.

Also guards the satellite work: grouped ``_DiagAccumulator`` entry
accumulation and weight/bias/zero plaintext caching.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.backend import ToyBackend
from repro.backend.sim import SimBackend
from repro.ckks.params import CkksParameters, toy_parameters
from repro.core.packing.layouts import VectorLayout
from repro.core.packing.matvec import _DiagAccumulator, build_linear_packing
from repro.rns.poly import RnsPolynomial


def _digit_groups(level, alpha):
    return [
        (digit, lo, min(lo + alpha, level + 1))
        for digit, lo in enumerate(range(0, level + 1, alpha))
    ]


def reference_keyswitch(ctx, d, key, level):
    """Per-digit key switch with exact big-integer digit lifts."""
    ks_chain = ctx._ks_chain(level)
    acc0 = RnsPolynomial.zero(ctx.basis, ks_chain)
    acc1 = RnsPolynomial.zero(ctx.basis, ks_chain)
    d_coeff = d.to_coeff()
    for digit, lo, hi in _digit_groups(level, ctx.params.ks_alpha):
        group = d.primes[lo:hi]
        centered = ctx.basis.crt_reconstruct(d_coeff.data[lo:hi], group)
        digit_poly = RnsPolynomial.from_bigint_coeffs(ctx.basis, ks_chain, centered)
        b_i, a_i = key.pairs[digit]
        acc0 = acc0 + digit_poly * ctx._restrict(b_i, ks_chain)
        acc1 = acc1 + digit_poly * ctx._restrict(a_i, ks_chain)
    for _ in range(ctx.params.num_special_primes):
        acc0 = acc0.divide_and_round_by_last()
        acc1 = acc1.divide_and_round_by_last()
    return acc0, acc1


PARAM_SETS = {
    "alpha1_special2": dict(
        ring_degree=256, max_level=5, num_special_primes=2, ks_alpha=1
    ),
    "alpha2_special2": dict(
        ring_degree=256, max_level=5, num_special_primes=2, ks_alpha=2
    ),
}


@pytest.fixture(scope="module", params=sorted(PARAM_SETS))
def backend(request):
    return ToyBackend(toy_parameters(**PARAM_SETS[request.param]), seed=11)


@pytest.fixture(scope="module")
def alpha3_backend():
    params = CkksParameters(
        ring_degree=128,
        scale_bits=18,
        max_level=5,
        first_prime_bits=21,
        prime_bits=18,
        special_prime_bits=25,
        boot_levels=1,
        num_special_primes=3,
        ks_alpha=3,
    )
    return ToyBackend(params, seed=13)


class TestGroupedDecomposition:
    def test_dnum_property(self):
        params = toy_parameters(
            ring_degree=256, max_level=5, num_special_primes=2, ks_alpha=2
        )
        assert params.dnum == 3
        assert toy_parameters(ring_degree=256, max_level=5).dnum == 6

    def test_rejects_narrow_special_basis(self):
        # ks_alpha=2 with a single 29-bit special prime cannot dominate
        # a ~50-bit digit modulus.
        with pytest.raises(ValueError, match="wider special basis"):
            toy_parameters(ring_degree=256, max_level=5, ks_alpha=2)

    def test_rejects_zero_alpha(self):
        with pytest.raises(ValueError, match="ks_alpha"):
            toy_parameters(ring_degree=256, max_level=5, ks_alpha=0)

    def test_rejects_wide_inner_digits(self):
        # Inner digits (ks_alpha rescale primes) can out-weigh digit 0
        # when prime_bits > first_prime_bits; the check must catch them.
        with pytest.raises(ValueError, match="wider special basis"):
            CkksParameters(
                ring_degree=256,
                scale_bits=25,
                max_level=5,
                first_prime_bits=22,
                prime_bits=25,
                special_prime_bits=24,
                num_special_primes=2,  # 48 bits >= 22+25 but < 2*25+...
                ks_alpha=2,
                boot_levels=1,
            )

    @pytest.mark.parametrize("level_drop", [0, 1, 2, 3])
    def test_keyswitch_matches_bigint_reference(self, backend, level_drop):
        """Grouped decompose/inner/mod-down == exact per-digit CRT path,
        including levels where the last digit group is partial."""
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        ct = backend.level_down(ct, ct.level - level_drop)
        key = ctx.galois_key(ctx.encoder.rotation_exponent(1))
        ref0, ref1 = reference_keyswitch(ctx, ct.c1, key, ct.level)
        got0, got1 = ctx._keyswitch(ct.c1, key, ct.level)
        assert np.array_equal(ref0.data, got0.data)
        assert np.array_equal(ref1.data, got1.data)

    def test_keyswitch_alpha3_matches_bigint_reference(self, alpha3_backend):
        ctx = alpha3_backend.context
        values = np.linspace(-1, 1, alpha3_backend.slot_count)
        ct = alpha3_backend.encode_encrypt(values)
        key = ctx.galois_key(ctx.encoder.rotation_exponent(1))
        ref0, ref1 = reference_keyswitch(ctx, ct.c1, key, ct.level)
        got0, got1 = ctx._keyswitch(ct.c1, key, ct.level)
        assert np.array_equal(ref0.data, got0.data)
        assert np.array_equal(ref1.data, got1.data)

    def test_rotate_decrypts_correctly(self, backend):
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        for step in (1, 3, backend.slot_count - 1):
            got = backend.decrypt(backend.rotate(ct, step))
            assert np.abs(got - np.roll(values, -step)).max() < 2e-2

    def test_rotate_hoisted_bitwise_equals_rotate(self, backend):
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        hoisted = ctx.rotate_hoisted(ct, [1, 2, 5])
        for step in (1, 2, 5):
            plain = ctx.rotate(ct, step)
            assert np.array_equal(hoisted[step].c0.data, plain.c0.data)
            assert np.array_equal(hoisted[step].c1.data, plain.c1.data)

    def test_mul_relinearize_under_grouping(self, backend):
        values = np.linspace(-0.9, 0.9, backend.slot_count)
        ct = backend.encode_encrypt(values)
        got = backend.decrypt(backend.rescale(backend.mul(ct, ct)))
        assert np.abs(got - values**2).max() < 5e-2


class TestRawHoistedRotation:
    def test_moddown_of_raw_equals_rotate_hoisted(self, backend):
        """The deferred-accumulator contract: raw + mod-down must equal
        the materialized hoisted rotation bit-for-bit."""
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        steps = [1, 4, 7]
        raw = ctx.rotate_hoisted_raw(ct, steps)
        full = ctx.rotate_hoisted(ct, steps)
        assert sorted(raw) == steps
        for step in steps:
            rot0, acc = raw[step]
            assert acc.shape[0] == 2 and acc.dtype == np.int64
            p0, p1 = ctx._ks_moddown(acc, ct.level)
            assert np.array_equal((rot0 + p0).data, full[step].c0.data)
            assert np.array_equal(p1.data, full[step].c1.data)

    def test_raw_excludes_zero_and_dedups(self, backend):
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        raw = ctx.rotate_hoisted_raw(ct, [0, 2, 2, -backend.slot_count + 2])
        assert sorted(raw) == [2]

    def test_raw_rejects_degree_two(self, backend):
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        sq = ctx.mul(ct, ct, relinearize=False)
        with pytest.raises(ValueError):
            ctx.rotate_hoisted_raw(sq, [1])


def reference_fused_matvec(backend, packed, in_cts, pt_scale):
    """Slow exact reference of the fused accumulation: independent
    per-offset decomposition (no hoisting), big-integer plaintext lifts,
    immediate modular reductions, one mod-down per output block."""
    ctx = backend.context
    level = in_cts[0].level
    ks_chain = ctx._ks_chain(level)
    mod_ks = ctx.basis.moduli_column(ks_chain)
    data_chain = ctx._data_chain(level)
    terms = packed._fused_term_vectors()
    outs = []
    for bo in range(packed.num_out):
        bo_terms = sorted((bi, off) for (bo2, bi, off) in terms if bo2 == bo)
        if not bo_terms:
            outs.append(None)
            continue
        acc = np.zeros((2, len(ks_chain), ctx.params.ring_degree), dtype=np.int64)
        c0 = RnsPolynomial.zero(ctx.basis, data_chain)
        c1 = RnsPolynomial.zero(ctx.basis, data_chain)
        rotated = False
        for bi, off in bo_terms:
            pt = ctx.encode(terms[(bo, bi, off)], level=level, scale=Fraction(pt_scale))
            if off == 0:
                c0 = c0 + pt.poly * in_cts[bi].c0
                c1 = c1 + pt.poly * in_cts[bi].c1
                continue
            rotated = True
            exponent = ctx.encoder.rotation_exponent(off)
            key = ctx.galois_key(exponent)
            rot1 = in_cts[bi].c1.automorphism(exponent)
            t = np.zeros_like(acc)
            d_coeff = rot1.to_coeff()
            for digit, lo, hi in _digit_groups(level, ctx.params.ks_alpha):
                group = rot1.primes[lo:hi]
                centered = ctx.basis.crt_reconstruct(d_coeff.data[lo:hi], group)
                dig = RnsPolynomial.from_bigint_coeffs(ctx.basis, ks_chain, centered)
                b_i, a_i = key.pairs[digit]
                t[0] = (t[0] + dig.data * ctx._restrict(b_i, ks_chain).data) % mod_ks
                t[1] = (t[1] + dig.data * ctx._restrict(a_i, ks_chain).data) % mod_ks
            pt_ext = pt.poly.extend_primes_reference(ks_chain)
            acc = (acc + pt_ext.data * t) % mod_ks
            c0 = c0 + pt.poly * in_cts[bi].c0.automorphism(exponent)
        if rotated:
            p0, p1 = ctx._ks_moddown(acc, level)
            c0 = c0 + p0
            c1 = c1 + p1
        outs.append((c0, c1))
    return outs


class TestFusedMatvec:
    @pytest.fixture(scope="class", params=sorted(PARAM_SETS))
    def setup(self, request):
        backend = ToyBackend(toy_parameters(**PARAM_SETS[request.param]), seed=3)
        n = backend.slot_count
        rng = np.random.default_rng(7)
        m = n // 4
        matrix = rng.uniform(-1, 1, (m, n))
        bias = rng.uniform(-0.5, 0.5, m)
        packed = build_linear_packing(matrix, bias, VectorLayout(n, n), name="fc")
        values = np.linspace(-1, 1, n)
        ct = backend.encode_encrypt(values)
        pt_scale = Fraction(backend.params.data_primes[ct.level])
        return backend, packed, ct, values, pt_scale

    def test_fused_accumulation_bitwise_equals_reference(self, setup):
        """The optimized fused path (shared decomposition, lazy int64
        chunks, fast lifts) must match the slow exact reference of the
        same deferred-mod-down computation bit-for-bit."""
        backend, packed, ct, _, pt_scale = setup
        got = backend._matvec_fused_no_charge(
            [ct], packed._fused_term_vectors(), packed.num_out, pt_scale
        )
        ref = reference_fused_matvec(backend, packed, [ct], pt_scale)
        assert len(got) == len(ref) and got
        for g, r in zip(got, ref):
            assert (g is None) == (r is None)
            if g is None:
                continue
            assert np.array_equal(g.c0.data, r[0].data)
            assert np.array_equal(g.c1.data, r[1].data)

    def test_fused_execute_matches_cleartext_and_unfused(self, setup):
        backend, packed, ct, values, pt_scale = setup
        expected = packed.execute_cleartext([values])[0]
        tol = 0.03 * max(1.0, np.abs(expected).max())
        fused = backend.decrypt(packed.execute(backend, [ct], pt_scale)[0])
        unfused = backend.decrypt(
            packed.execute(backend, [ct], pt_scale, hoisting="double-unfused")[0]
        )
        assert np.abs(fused - expected).max() < tol
        assert np.abs(unfused - expected).max() < tol
        # The fused path reorders the mod-down rounding (one deferred
        # division instead of one per baby step), so outputs agree to
        # noise precision, not bitwise; the bitwise contract is against
        # reference_fused_matvec above.
        assert np.abs(fused - unfused).max() < tol

    def test_fused_ledger_rotations_match_plan(self, setup):
        """Fused execution must keep '# Rots' accounting identical to
        the compile-time plan (paper-table comparability)."""
        backend, packed, ct, _, pt_scale = setup
        backend.ledger.reset()
        packed.execute(backend, [ct], pt_scale)
        assert backend.ledger.rotations == packed.rotation_count()
        assert backend.ledger.counts["pmult"] >= packed.pmult_count()

    def test_plaintext_and_bias_caching(self, setup):
        """Weights, bias, and zero plaintexts encode once, not per run."""
        backend, packed, ct, _, pt_scale = setup
        packed.execute(backend, [ct], pt_scale)  # warm the caches
        calls = []
        original = backend.encode

        def counting_encode(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        backend.encode = counting_encode
        try:
            packed.execute(backend, [ct], pt_scale)
        finally:
            backend.encode = original
        assert calls == []

    def test_sim_backend_fused_matches_cleartext(self, setup):
        backend, packed, _, values, pt_scale = setup
        sim = SimBackend(backend.params, seed=5)
        ct = sim.encode_encrypt(values)
        expected = packed.execute_cleartext([values])[0]
        got = sim.decrypt(packed.execute(sim, [ct], pt_scale)[0])
        assert np.abs(got - expected).max() < 0.03 * max(1.0, np.abs(expected).max())
        sim.ledger.reset()
        packed.execute(sim, [ct], pt_scale)
        assert sim.ledger.rotations == packed.rotation_count()

    def test_unsupported_backend_falls_back(self, setup):
        """A backend without a fused path must silently take the
        per-rotation BSGS pipeline."""
        backend, packed, ct, values, pt_scale = setup

        class NoFused(ToyBackend):
            def _matvec_fused_no_charge(self, *args, **kwargs):
                return None

        nf = NoFused(backend.params, seed=3)
        ct2 = nf.encode_encrypt(values)
        expected = packed.execute_cleartext([values])[0]
        got = nf.decrypt(packed.execute(nf, [ct2], pt_scale)[0])
        assert np.abs(got - expected).max() < 0.03 * max(1.0, np.abs(expected).max())


class TestDiagAccumulatorGrouped:
    def _reference(self, slots, calls):
        vecs = {}
        for out_slot, in_slot, value in calls:
            for o, i, v in zip(
                np.ravel(out_slot), np.ravel(in_slot), np.ravel(value)
            ):
                key = (int(o) // slots, int(i) // slots, int((i - o) % slots))
                vec = vecs.setdefault(key, np.zeros(slots))
                vec[int(o) % slots] += v
        return vecs

    def test_matches_naive_accumulation(self):
        slots = 16
        rng = np.random.default_rng(0)
        calls = []
        for _ in range(3):
            size = rng.integers(1, 40)
            out_slot = rng.integers(0, 4 * slots, size)
            in_slot = rng.integers(0, 4 * slots, size)
            value = rng.normal(size=size)
            calls.append((out_slot, in_slot, value))
        acc = _DiagAccumulator(slots)
        for out_slot, in_slot, value in calls:
            acc.add_entries(out_slot, in_slot, value)
        ref = self._reference(slots, calls)
        assert set(acc.vecs) == set(ref)
        for key, vec in ref.items():
            np.testing.assert_allclose(acc.vecs[key], vec, atol=1e-12)

    def test_repeated_entries_sum(self):
        acc = _DiagAccumulator(8)
        acc.add_entries(np.array([1, 1, 1]), np.array([3, 3, 3]), np.array([1.0, 2.0, 3.0]))
        assert acc.vecs[(0, 0, 2)][1] == pytest.approx(6.0)

    def test_empty_input_is_noop(self):
        acc = _DiagAccumulator(8)
        acc.add_entries(np.array([]), np.array([]), np.array([]))
        assert acc.vecs == {}
