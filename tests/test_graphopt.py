"""Graph-level optimizer tests: per-pass bit-exactness and cost parity.

The optimizer's contract (docs/graphopt.md) is that every rewrite is
semantics-preserving on the packed cleartext path — the optimized
program's ``run_cleartext_packed`` output is *bitwise* identical to the
un-optimized program's — and never increases the modeled cost.  The
encrypted outputs are compared with a tolerance instead: placement may
legally choose different execution levels for the restructured chain,
which changes plaintext-encoding rounding without changing semantics.
"""

import numpy as np
import pytest

import repro.orion.nn as on
from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.core.compiler import OrionCompiler
from repro.models import resnet_cifar, silu_act
from repro.nn import init
from repro.orion import OrionNetwork
from repro.trace.graph import LayerGraph, TraceNode


@pytest.fixture(scope="module")
def params():
    return toy_parameters(ring_degree=2048, max_level=6, boot_levels=1,
                          scale_bits=24)


def make_net(builder, shape, seed=0):
    init.seed_init(seed)
    net = builder()
    rng = np.random.default_rng(seed)
    onet = OrionNetwork(net, shape)
    onet.fit([rng.normal(0, 0.5, (4,) + shape)])
    return onet, rng


def compile_both(onet, params, **kwargs):
    return (
        onet.compile(params, optimize=True, **kwargs),
        onet.compile(params, optimize=False, **kwargs),
    )


def assert_equivalent(onet, params, rng, shape):
    """The core contract: bitwise cleartext-packed parity, encrypted
    tolerance, and ledger/report rotation parity."""
    c_on, c_off = compile_both(onet, params)
    img = rng.normal(0, 0.5, shape)
    clear_on = c_on.program.run_cleartext_packed(img)
    clear_off = c_off.program.run_cleartext_packed(img)
    assert np.array_equal(clear_on, clear_off)

    b_on, b_off = ToyBackend(params), ToyBackend(params)
    enc_on = c_on.run(b_on, img)
    enc_off = c_off.run(b_off, img)
    assert np.allclose(enc_on, enc_off, atol=1e-2)
    assert b_on.ledger.rotations == c_on.total_rotations
    assert b_off.ledger.rotations == c_off.total_rotations
    return c_on, c_off


# ---------------------------------------------------------------------------
# networks under test
# ---------------------------------------------------------------------------
class SiblingConvs(on.Module):
    """Two convolutions consuming the same value — the concat-fusion
    target shape (inception-style parallel branches)."""

    def __init__(self):
        super().__init__()
        self.conv1 = on.Conv2d(2, 2, 3, padding=1, bias=True)
        self.bn1 = on.BatchNorm2d(2)
        self.act = on.Square()
        self.conv_a = on.Conv2d(2, 2, 3, padding=1, bias=True)
        self.conv_b = on.Conv2d(2, 2, 3, padding=1, bias=False)
        self.add = on.Add()
        self.act2 = on.Square()

    def forward(self, x):
        x = self.act(self.bn1(self.conv1(x)))
        x = self.add(self.conv_a(x), self.conv_b(x))
        return self.act2(x)


class SkipBlock(on.Module):
    """ResNet projection block: main-path conv and 1x1 shortcut conv
    share the fork input (both BN-folded)."""

    def __init__(self):
        super().__init__()
        self.conv1 = on.Conv2d(2, 4, 3, 2, 1, bias=False)
        self.bn1 = on.BatchNorm2d(4)
        self.act1 = on.Square()
        self.conv2 = on.Conv2d(4, 4, 3, 1, 1, bias=False)
        self.bn2 = on.BatchNorm2d(4)
        self.short = on.Conv2d(2, 4, 1, 2, 0, bias=False)
        self.bn_s = on.BatchNorm2d(4)
        self.add = on.Add()
        self.act2 = on.Square()

    def forward(self, x):
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = self.add(out, self.bn_s(self.short(x)))
        return self.act2(out)


class RollFork(on.Module):
    """Two branches rotating the fork value by the same offset."""

    def __init__(self):
        super().__init__()
        self.flat = on.Flatten()
        self.fc = on.Linear(16, 16)
        self.roll_a = on.Roll(3)
        self.roll_b = on.Roll(3)
        self.sq_a = on.Square()
        self.sq_b = on.Square()
        self.add = on.Add()

    def forward(self, x):
        x = self.fc(self.flat(x))
        return self.add(self.sq_a(self.roll_a(x)), self.sq_b(self.roll_b(x)))


class RollCancel(on.Module):
    """rotate/unrotate pair around a pointwise op — composes to zero."""

    def __init__(self):
        super().__init__()
        self.flat = on.Flatten()
        self.fc = on.Linear(16, 16)
        self.roll_fwd = on.Roll(5)
        self.sq = on.Square()
        self.roll_back = on.Roll(-5)

    def forward(self, x):
        return self.roll_back(self.roll_fwd(self.sq(self.fc(self.flat(x)))))


class Straight(on.Module):
    """No forks, no rotations: the optimizer must not touch it."""

    def __init__(self):
        super().__init__()
        self.conv = on.Conv2d(2, 2, 3, padding=1)
        self.sq = on.Square()
        self.flat = on.Flatten()
        self.fc = on.Linear(32, 4)

    def forward(self, x):
        return self.fc(self.flat(self.sq(self.conv(x))))


# ---------------------------------------------------------------------------
# concat-linear fusion
# ---------------------------------------------------------------------------
class TestConcatFusion:
    def test_sibling_convs_fuse_and_stay_bit_exact(self, params):
        onet, rng = make_net(SiblingConvs, (2, 4, 4))
        c_on, c_off = assert_equivalent(onet, params, rng, (2, 4, 4))
        assert c_on.graph_opt_report.rewrites.get("concat_linear_fusion") == 1
        # The fused matvec shares babies/giants across siblings.
        assert c_on.total_rotations < c_off.total_rotations

    def test_skip_block_bit_exact(self, params):
        onet, rng = make_net(SkipBlock, (2, 8, 8), seed=1)
        c_on, c_off = assert_equivalent(onet, params, rng, (2, 8, 8))
        assert c_on.total_rotations <= c_off.total_rotations

    def test_analyze_matches_materialize_counts(self, params):
        onet, _ = make_net(SiblingConvs, (2, 4, 4))
        mat = onet.compile(params, mode="materialize", optimize=True)
        ana = onet.compile(params, mode="analyze", optimize=True)
        assert mat.graph_opt_report.summary() == ana.graph_opt_report.summary()
        assert mat.total_rotations == ana.total_rotations
        assert mat.total_pmults == ana.total_pmults
        assert mat.num_bootstraps == ana.num_bootstraps

    def test_straight_line_graph_untouched(self, params):
        onet, rng = make_net(Straight, (2, 4, 4))
        c_on, c_off = assert_equivalent(onet, params, rng, (2, 4, 4))
        assert c_on.graph_opt_report.total == 0
        assert c_on.total_rotations == c_off.total_rotations
        assert [r.name for r in c_on.layer_reports] == [
            r.name for r in c_off.layer_reports
        ]


# ---------------------------------------------------------------------------
# rotation hoisting + cancellation
# ---------------------------------------------------------------------------
class TestRotationPasses:
    def test_hoist_shared_branch_rotation(self, params):
        onet, rng = make_net(RollFork, (1, 4, 4), seed=1)
        c_on, c_off = assert_equivalent(onet, params, rng, (1, 4, 4))
        assert c_on.graph_opt_report.rewrites.get("hoist_branch_rotations") == 1
        assert c_on.total_rotations == c_off.total_rotations - 1

    def test_cancel_rotate_unrotate_pair(self, params):
        onet, rng = make_net(RollCancel, (1, 4, 4), seed=1)
        c_on, c_off = assert_equivalent(onet, params, rng, (1, 4, 4))
        # Roll(5) then Roll(-5) compose to Roll(0), which then vanishes.
        assert c_on.graph_opt_report.rewrites.get("cancel_rotations") == 2
        assert c_on.total_rotations == c_off.total_rotations - 2

    def test_unoptimized_roll_still_executes(self, params):
        """Roll lowers correctly on the reference path too."""
        onet, rng = make_net(RollCancel, (1, 4, 4), seed=1)
        compiled = onet.compile(params, optimize=False)
        names = [r.name for r in compiled.layer_reports if r.kind == "rotate"]
        assert len(names) == 2
        img = rng.normal(0, 0.5, (1, 4, 4))
        backend = ToyBackend(params)
        compiled.run(backend, img)
        assert backend.ledger.rotations == compiled.total_rotations


# ---------------------------------------------------------------------------
# batch-norm folding into dense layers (satellite: lifted conv-only gate)
# ---------------------------------------------------------------------------
class TestBatchNorm1dFold:
    def test_bn1d_folds_into_linear(self, params):
        def build():
            net = _DenseBn()
            rng = np.random.default_rng(7)
            net.bn.running_mean.data[:] = rng.normal(0, 0.2, 8)
            net.bn.running_var.data[:] = rng.uniform(0.5, 2.0, 8)
            return net

        onet, rng = make_net(build, (1, 4, 4), seed=2)
        compiled = onet.compile(params)
        kinds = [r.kind for r in compiled.layer_reports]
        assert "batchnorm" not in kinds  # folded into the Linear
        img = rng.normal(0, 0.5, (1, 4, 4))
        enc = compiled.run(ToyBackend(params), img)
        clear = onet.forward_cleartext(img)
        assert OrionNetwork.precision_bits(enc[: clear.size], clear) > 6

    def test_bn1d_cleartext_matches_bn2d(self):
        from repro.nn import BatchNorm1d, BatchNorm2d

        rng = np.random.default_rng(0)
        mean = rng.normal(0, 0.3, 6)
        var = rng.uniform(0.5, 2.0, 6)
        bn1, bn2 = BatchNorm1d(6), BatchNorm2d(6)
        for m in (bn1, bn2):
            m.running_mean.data[:] = mean
            m.running_var.data[:] = var
            m.eval()
        from repro.autograd.tensor import Tensor

        x = rng.normal(0, 1, (3, 6))
        out1 = bn1(Tensor(x)).data
        out2 = bn2(Tensor(x.reshape(3, 6, 1, 1))).data.reshape(3, 6)
        np.testing.assert_allclose(out1, out2, rtol=1e-12)


class _DenseBn(on.Module):
    def __init__(self):
        super().__init__()
        self.flat = on.Flatten()
        self.fc = on.Linear(16, 8)
        self.bn = on.BatchNorm1d(8)
        self.sq = on.Square()

    def forward(self, x):
        return self.sq(self.bn(self.fc(self.flat(x))))


# ---------------------------------------------------------------------------
# LayerGraph rewrite API + cache invalidation (satellite)
# ---------------------------------------------------------------------------
class TestGraphCaches:
    def _toy_graph(self):
        graph = LayerGraph()
        graph.input_uid = graph.fresh_uid()
        mod = on.Square()
        n1 = TraceNode(0, mod, (graph.input_uid,), graph.fresh_uid(),
                       ((4,),), (4,))
        n2 = TraceNode(1, mod, (n1.output,), graph.fresh_uid(), ((4,),), (4,))
        graph.nodes = [n1, n2]
        graph.output_uid = n2.output
        return graph, n1, n2

    def test_caches_invalidate_on_remove(self):
        graph, n1, n2 = self._toy_graph()
        assert graph.producers()[n1.output] is n1  # caches built
        graph.remove_nodes([n2])
        assert n2.output not in graph.producers()
        assert graph.consumers().get(n1.output, []) == []

    def test_caches_invalidate_on_rewire(self):
        graph, n1, n2 = self._toy_graph()
        graph.consumers()  # build
        graph.rewire_value(n1.output, graph.input_uid)
        assert graph.consumers()[graph.input_uid] == [n1, n2]

    def test_caches_invalidate_on_insert(self):
        graph, n1, n2 = self._toy_graph()
        graph.producers()  # build
        n3 = TraceNode(graph.fresh_index(), on.Square(), (n1.output,),
                       graph.fresh_uid(), ((4,),), (4,))
        graph.insert_nodes(graph.position_of(n2), [n3])
        assert graph.producers()[n3.output] is n3
        assert graph.fresh_index() == n3.index + 1


# ---------------------------------------------------------------------------
# artifact round-trip + switches
# ---------------------------------------------------------------------------
class TestIntegration:
    def test_optimized_program_round_trips_artifact(self, params, tmp_path):
        onet, rng = make_net(SiblingConvs, (2, 4, 4))
        compiled = onet.compile(params, optimize=True)
        onet.export(str(tmp_path / "art"), params, optimize=True)
        from repro.serve.artifact import load_artifact

        art = load_artifact(str(tmp_path / "art"))
        img = rng.normal(0, 0.5, (2, 4, 4))
        a = compiled.program.run_cleartext_packed(img)
        b = art.program.run_cleartext_packed(img)
        assert np.array_equal(a, b)

    def test_env_switch_controls_default(self, params, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_OPT", "off")
        assert OrionCompiler(params).optimize is False
        monkeypatch.setenv("REPRO_GRAPH_OPT", "on")
        assert OrionCompiler(params).optimize is True
        monkeypatch.delenv("REPRO_GRAPH_OPT")
        assert OrionCompiler(params).optimize is True
        # Explicit argument beats the environment.
        monkeypatch.setenv("REPRO_GRAPH_OPT", "off")
        assert OrionCompiler(params, optimize=True).optimize is True

    def test_summary_reports_graph_opt_seconds(self, params):
        onet, _ = make_net(Straight, (2, 4, 4))
        compiled = onet.compile(params, optimize=True)
        assert "graph_opt_seconds" in compiled.summary()
        assert compiled.graph_opt_seconds >= 0.0

    def test_resnet8_boot_placement_stable_under_optimizer(self):
        """Table 5 regression: the optimizer must not change resnet-8's
        bootstrap placement (6 boots, entry level 9)."""
        from repro.ckks.params import paper_parameters

        init.seed_init(3)
        net = resnet_cifar(8, act=silu_act(31), width=4)
        rng = np.random.default_rng(3)
        onet = OrionNetwork(net, (3, 8, 8))
        onet.fit([rng.normal(0, 0.5, (8, 3, 8, 8))])
        pp = paper_parameters()
        c_on = onet.compile(pp, mode="analyze", optimize=True)
        c_off = onet.compile(pp, mode="analyze", optimize=False)
        assert c_on.num_bootstraps == c_off.num_bootstraps == 6
        assert c_on.placement.entry_level == 9
