"""Tests for the limb-batched hot-path engine.

Covers the chain-level NTT against the schoolbook negacyclic reference,
NTT-domain automorphisms against the coefficient-domain path, fast RNS
basis conversion against exact CRT, hoisted key switching against the
unhoisted path, and a regression guard that the evaluator hot paths
never allocate object-dtype (Python bigint) arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.ntt import galois_eval_permutation, negacyclic_convolve_reference
from repro.rns import RnsBasis, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64


@pytest.fixture(scope="module")
def basis():
    primes = find_ntt_primes(26, 4, N) + find_ntt_primes(28, 1, N)
    return RnsBasis(primes, N, num_special=1)


class TestBatchedNtt:
    def test_chain_roundtrip_all_levels(self, basis):
        rng = np.random.default_rng(0)
        for limbs in range(1, len(basis.primes) + 1):
            primes = basis.primes[:limbs]
            data = np.stack([rng.integers(0, q, N) for q in primes])
            fwd = basis.forward_chain(data, primes)
            assert fwd.dtype == np.int64
            assert np.array_equal(basis.inverse_chain(fwd, primes), data)

    def test_chain_matches_per_prime_contexts(self, basis):
        """The batched engine agrees with NttContext limb by limb."""
        rng = np.random.default_rng(1)
        primes = basis.primes
        data = np.stack([rng.integers(0, q, N) for q in primes])
        fwd = basis.forward_chain(data, primes)
        for row, q, out in zip(data, primes, fwd):
            assert np.array_equal(out, basis.ntts[q].forward(row))

    def test_chain_on_noncontiguous_subset(self, basis):
        """Key-switch chains skip primes; row gathering must follow."""
        rng = np.random.default_rng(2)
        primes = basis.primes[:2] + basis.special_primes
        data = np.stack([rng.integers(0, q, N) for q in primes])
        fwd = basis.forward_chain(data, primes)
        for row, q, out in zip(data, primes, fwd):
            assert np.array_equal(out, basis.ntts[q].forward(row))

    def test_leading_dimensions_batch(self, basis):
        """(D, L, N) digit stacks transform exactly like separate calls."""
        rng = np.random.default_rng(3)
        primes = basis.primes[:3]
        stack = np.stack(
            [np.stack([rng.integers(0, q, N) for q in primes]) for _ in range(4)]
        )
        batched = basis.forward_chain(stack, primes)
        for d in range(4):
            assert np.array_equal(batched[d], basis.forward_chain(stack[d], primes))

    def test_multiply_matches_schoolbook_reference(self, basis):
        rng = np.random.default_rng(4)
        primes = basis.primes[:3]
        a = np.stack([rng.integers(0, q, N) for q in primes])
        b = np.stack([rng.integers(0, q, N) for q in primes])
        mod_col = basis.moduli_column(primes)
        prod = basis.inverse_chain(
            (basis.forward_chain(a, primes) * basis.forward_chain(b, primes))
            % mod_col,
            primes,
        )
        for row_a, row_b, row_p, q in zip(a, b, prod, primes):
            assert np.array_equal(
                row_p, negacyclic_convolve_reference(row_a, row_b, q)
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=5))
    def test_property_random_limbs_and_levels(self, seed, limbs):
        basis = _shared_basis()
        rng = np.random.default_rng(seed)
        primes = basis.primes[:limbs]
        a = np.stack([rng.integers(0, q, N) for q in primes])
        b = np.stack([rng.integers(0, q, N) for q in primes])
        mod_col = basis.moduli_column(primes)
        prod = basis.inverse_chain(
            (basis.forward_chain(a, primes) * basis.forward_chain(b, primes))
            % mod_col,
            primes,
        )
        for row_a, row_b, row_p, q in zip(a, b, prod, primes):
            assert np.array_equal(
                row_p, negacyclic_convolve_reference(row_a, row_b, q)
            )


class TestNttDomainAutomorphism:
    def _random_poly(self, basis, primes, seed):
        rng = np.random.default_rng(seed)
        data = np.stack([rng.integers(0, q, N) for q in primes])
        return RnsPolynomial(basis, primes, data, is_ntt=True)

    @pytest.mark.parametrize("exponent", [5, 25, 3, 2 * N - 1])
    def test_matches_coeff_domain_path(self, basis, exponent):
        poly = self._random_poly(basis, basis.primes[:3], exponent)
        fast = poly.automorphism(exponent)
        assert fast.is_ntt
        slow = poly.to_coeff().automorphism(exponent).to_ntt()
        assert np.array_equal(fast.data, slow.data)

    def test_permutation_is_cached(self):
        p1 = galois_eval_permutation(N, 5)
        p2 = galois_eval_permutation(N, 5 + 2 * N)
        assert p1 is p2

    def test_rejects_even_exponent(self, basis):
        poly = self._random_poly(basis, basis.primes[:2], 0)
        with pytest.raises(ValueError):
            poly.automorphism(4)

    def test_composition_matches_single_step(self, basis):
        """sigma_5 twice equals sigma_25 on evaluation-form data."""
        poly = self._random_poly(basis, basis.primes[:2], 7)
        twice = poly.automorphism(5).automorphism(5)
        once = poly.automorphism(25)
        assert np.array_equal(twice.data, once.data)


class TestFastBasisConversion:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=10, max_value=58),
    )
    def test_matches_exact_crt(self, seed, limbs, magnitude_bits):
        """Fast conversion equals the bigint reference over random data."""
        basis = _shared_basis()
        rng = np.random.default_rng(seed)
        primes = basis.primes[:limbs]
        bound = min(1 << magnitude_bits, basis.modulus(limbs) // 2 - 1)
        coeffs = rng.integers(-bound, bound + 1, N).astype(object)
        poly = RnsPolynomial.from_bigint_coeffs(basis, primes, coeffs, to_ntt=False)
        target = primes + basis.special_primes
        fast = poly.extend_primes(target)
        exact = poly.extend_primes_reference(target)
        assert fast.data.dtype == np.int64
        assert np.array_equal(fast.data, exact.data)

    def test_extend_preserves_value(self, basis):
        rng = np.random.default_rng(11)
        primes = basis.primes[:2]
        coeffs = rng.integers(-1000, 1000, N).astype(object)
        poly = RnsPolynomial.from_bigint_coeffs(basis, primes, coeffs)
        extended = poly.extend_primes(primes + basis.special_primes)
        assert extended.is_ntt
        assert np.array_equal(extended.to_bigint_coeffs(), coeffs)

    def test_shared_primes_copied_verbatim(self, basis):
        rng = np.random.default_rng(12)
        primes = basis.primes[:3]
        coeffs = rng.integers(-(1 << 30), 1 << 30, N).astype(object)
        poly = RnsPolynomial.from_bigint_coeffs(basis, primes, coeffs, to_ntt=False)
        extended = poly.extend_primes(primes + basis.special_primes)
        assert np.array_equal(extended.data[: len(primes)], poly.data)


class TestHoistedKeySwitch:
    @pytest.fixture(scope="class")
    def backend(self):
        params = toy_parameters(ring_degree=256, max_level=5, scale_bits=21, boot_levels=2)
        return ToyBackend(params, seed=5)

    def test_rotate_hoisted_bitwise_equals_rotate(self, backend):
        """Hoisting shares the decomposition but must change nothing."""
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        hoisted = ctx.rotate_hoisted(ct, [0, 1, 3, 5])
        assert hoisted[0] is ct
        for step in (1, 3, 5):
            plain = ctx.rotate(ct, step)
            assert np.array_equal(hoisted[step].c0.data, plain.c0.data)
            assert np.array_equal(hoisted[step].c1.data, plain.c1.data)

    def test_rotate_group_uses_real_hoisting(self, backend):
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        outs = backend.rotate_group(ct, [1, 2])
        for step in (1, 2):
            got = backend.decrypt(outs[step])
            assert np.abs(got - np.roll(values, -step)).max() < 2e-2

    def test_rotate_hoisted_interface_charges_hoisted_price(self, backend):
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        backend.ledger.reset()
        backend.rotate_hoisted(ct, [1, 2, 3])
        assert backend.ledger.counts["hrot_hoisted"] == 3

    def test_chunked_inner_product_matches_fast_path(self, backend):
        """Force the overflow-safe chunked accumulation (only reached
        with ~31-bit primes in real configs) and compare exactly."""
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        key = ctx.galois_key(ctx.encoder.rotation_exponent(1))
        digits = ctx._ks_decompose(ct.c1, ct.level)
        fast = ctx._ks_inner(digits, key, ct.level)
        for max_chunk in (1, 2, 3):
            chunked = ctx._ks_inner(digits, key, ct.level, _max_chunk=max_chunk)
            assert np.array_equal(fast, chunked)

    def test_rejects_degree_two(self, backend):
        ctx = backend.context
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        sq = ctx.mul(ct, ct, relinearize=False)
        with pytest.raises(ValueError):
            ctx.rotate_hoisted(sq, [1])


class TestNoBigintOnHotPaths:
    """Regression guard: encrypt/rotate/mul/rescale stay in int64 land."""

    @pytest.fixture()
    def guarded_backend(self, monkeypatch):
        params = toy_parameters(ring_degree=256, max_level=5, scale_bits=21, boot_levels=2)
        backend = ToyBackend(params, seed=9)
        values = np.linspace(-1, 1, backend.slot_count)
        pt = backend.encode(values, params.max_level, params.scale)
        ct = backend.encrypt(pt)
        # Pre-generate the rotation key outside the guard (keygen is
        # compile-time; the guard covers evaluation).
        backend.context.galois_key(backend.context.encoder.rotation_exponent(1))

        def forbid(*args, **kwargs):
            raise AssertionError("bigint path reached from an evaluator hot path")

        monkeypatch.setattr(RnsBasis, "crt_reconstruct", forbid)
        monkeypatch.setattr(RnsBasis, "reduce_bigints", forbid)
        monkeypatch.setattr(RnsPolynomial, "to_bigint_coeffs", forbid)
        monkeypatch.setattr(RnsPolynomial, "from_bigint_coeffs", forbid)
        original_init = RnsPolynomial.__init__

        def checked_init(self, basis, primes, data, is_ntt):
            assert data.dtype == np.int64, f"object-dtype poly: {data.dtype}"
            original_init(self, basis, primes, data, is_ntt)

        monkeypatch.setattr(RnsPolynomial, "__init__", checked_init)
        return backend, pt, ct

    def test_encrypt(self, guarded_backend):
        backend, pt, _ = guarded_backend
        ct = backend.encrypt(pt)
        assert ct.c0.data.dtype == np.int64

    def test_rotate(self, guarded_backend):
        backend, _, ct = guarded_backend
        out = backend.rotate(ct, 1)
        assert out.c0.data.dtype == np.int64

    def test_rotate_hoisted(self, guarded_backend):
        backend, _, ct = guarded_backend
        outs = backend.rotate_hoisted(ct, [1])
        assert outs[1].c1.data.dtype == np.int64

    def test_mul_and_relinearize(self, guarded_backend):
        backend, _, ct = guarded_backend
        out = backend.mul(ct, ct)
        assert out.c0.data.dtype == np.int64

    def test_mul_plain(self, guarded_backend):
        backend, pt, ct = guarded_backend
        out = backend.mul_plain(ct, pt)
        assert out.c0.data.dtype == np.int64

    def test_rescale(self, guarded_backend):
        backend, pt, ct = guarded_backend
        out = backend.rescale(backend.mul_plain(ct, pt))
        assert out.c0.data.dtype == np.int64


class TestBatchedRescale:
    def test_matches_per_poly_division(self):
        params = toy_parameters(ring_degree=256, max_level=5, scale_bits=21, boot_levels=2)
        backend = ToyBackend(params, seed=3)
        values = np.linspace(-1, 1, backend.slot_count)
        ct = backend.encode_encrypt(values)
        pt = backend.encode(values, ct.level, params.scale)
        prod = backend.mul_plain(ct, pt)
        fast = backend.rescale(prod)
        assert np.array_equal(
            fast.c0.data, prod.c0.divide_and_round_by_last().data
        )
        assert np.array_equal(
            fast.c1.data, prod.c1.divide_and_round_by_last().data
        )

    def test_coeff_form_division_matches_reference(self, basis):
        """The non-NTT divide path agrees with integer rounding."""
        rng = np.random.default_rng(13)
        primes = basis.primes[:3]
        last = primes[-1]
        coeffs = rng.integers(-(1 << 40), 1 << 40, N).astype(object)
        poly = RnsPolynomial.from_bigint_coeffs(basis, primes, coeffs, to_ntt=False)
        divided = poly.divide_and_round_by_last()
        assert not divided.is_ntt
        got = divided.to_bigint_coeffs()
        for value, out in zip(coeffs, got):
            rem = int(value) % last
            if rem > last // 2:
                rem -= last
            assert int(out) == (int(value) - rem) // last


_BASIS_CACHE = {}


def _shared_basis():
    key = "default"
    if key not in _BASIS_CACHE:
        primes = find_ntt_primes(26, 5, N) + find_ntt_primes(28, 1, N)
        _BASIS_CACHE[key] = RnsBasis(primes, N, num_special=1)
    return _BASIS_CACHE[key]
