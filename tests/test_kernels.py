"""Tests for the repro.kernels subsystem.

Three layers:

- the dispatch registry itself (capability probe, env/API selection,
  per-kernel numpy fallback, error paths);
- the shared int64 lazy-accumulator chunk bound
  (:func:`repro.kernels.lazy_reduction_chunk`), including the headroom
  regression at the boundary chunk size;
- bit-exactness of the stacked hot paths against independent naive
  references: stacked ``rotate_hoisted_raw`` vs a per-offset loop
  (across ks_alpha values, partial digit groups, mixed int and
  ``("conj", k)`` offsets, compressed keys at their level bound, and a
  forced ``_max_chunk`` fallback), the grouped fused matvec, the
  simulator's batched gathers, and numpy-vs-threaded agreement for
  every dispatched kernel.
"""

import os

import numpy as np
import pytest

from repro import kernels
from repro.backend import ToyBackend
from repro.backend.ledger import OpLedger
from repro.backend.sim import SimBackend
from repro.ckks.galois import galois_offset_key
from repro.ckks.params import toy_parameters
from repro.kernels.dispatch import KernelDispatchError, KernelRegistry
from repro.ntt import galois_eval_permutation

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate every test from ambient REPRO_KERNELS and API overrides."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels.select_backend(None)
    yield
    # This teardown runs before monkeypatch's env restore: drop any env
    # override the test set so clearing the API override cannot trip on
    # an invalid REPRO_KERNELS value.
    os.environ.pop(kernels.ENV_VAR, None)
    kernels.select_backend(None)


@pytest.fixture(scope="module", params=[1, 2])
def toy_backend(request):
    alpha = request.param
    return ToyBackend(
        toy_parameters(
            ring_degree=256,
            max_level=5,
            num_special_primes=2,
            ks_alpha=alpha,
        ),
        seed=7,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_known_kernels_registered(self):
        names = kernels.registry.kernels()
        for kernel in (
            "galois_gather",
            "ks_inner",
            "ks_inner_stacked",
            "ntt_stage",
        ):
            assert kernel in names
            assert "numpy" in kernels.registry.backends_for(kernel)
            assert "threaded" in kernels.registry.backends_for(kernel)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KernelDispatchError, match="unknown kernel"):
            kernels.get("no_such_kernel")

    def test_unknown_backend_rejected_at_registration(self):
        reg = KernelRegistry()
        with pytest.raises(KernelDispatchError, match="unknown backend"):
            reg.register("k", "cuda", lambda: None)

    def test_probe_matches_cpu_count(self):
        expected = "threaded" if (os.cpu_count() or 1) > 1 else "numpy"
        assert kernels.registry.probe() == expected
        assert kernels.active_backend() == expected

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "threaded")
        assert kernels.active_backend() == "threaded"
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.active_backend() == "numpy"
        monkeypatch.setenv(kernels.ENV_VAR, "auto")
        assert kernels.active_backend() == kernels.registry.probe()

    def test_env_var_invalid_name(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        with pytest.raises(KernelDispatchError, match="unknown kernel backend"):
            kernels.active_backend()

    def test_api_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.select_backend("threaded") == "threaded"
        assert kernels.active_backend() == "threaded"
        kernels.select_backend(None)
        assert kernels.active_backend() == "numpy"

    @pytest.mark.skipif(
        kernels.numba_available(), reason="numba installed: selection is legal"
    )
    def test_numba_unavailable_fails_loudly(self, monkeypatch):
        with pytest.raises(KernelDispatchError, match="not available"):
            kernels.select_backend("numba")
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        with pytest.raises(KernelDispatchError, match="not available"):
            kernels.active_backend()

    def test_missing_impl_falls_back_to_numpy(self):
        reg = KernelRegistry()
        reg.register("only_ref", "numpy", lambda: "ref")
        assert reg.select("threaded") == "threaded"
        assert reg.get("only_ref")() == "ref"

    def test_available_backends_always_include_portable_pair(self):
        names = kernels.registry.available_backends()
        assert "numpy" in names and "threaded" in names
        assert ("numba" in names) == kernels.numba_available()


# ---------------------------------------------------------------------------
# Shared chunk bound
# ---------------------------------------------------------------------------
class TestLazyReductionChunk:
    def test_headroom_at_boundary(self):
        """The bound must hold with a reduced value already in the
        accumulator: (max_q-1) + chunk * (max_q-1)^2 <= 2^63 - 1, and
        chunk is the largest such integer (the seed's _ks_inner formula
        admitted one extra product and could overflow)."""
        for max_q in (2**31 - 1, 2**29 + 3, 2**20 + 7, 3):
            chunk = kernels.lazy_reduction_chunk(max_q)
            top = max_q - 1
            assert top + chunk * top**2 <= 2**63 - 1
            assert top + (chunk + 1) * top**2 > 2**63 - 1

    def test_headroomed_vs_headroomless_formula(self):
        # The seed's _ks_inner bound (2^63-1) // top^2 ignores the
        # reduced value already sitting in the accumulator; find a
        # modulus where that admits one product too many and check the
        # shared helper reserves the headroom there.
        found = None
        for top in range(3, 200_000):
            if (2**63 - 1) % (top * top) < top:
                found = top + 1
                break
        assert found is not None
        loose = (2**63 - 1) // ((found - 1) ** 2)
        assert kernels.lazy_reduction_chunk(found) == loose - 1

    def test_max_chunk_cap(self):
        assert kernels.lazy_reduction_chunk(2**20, max_chunk=3) == 3
        with pytest.raises(ValueError, match="max_chunk"):
            kernels.lazy_reduction_chunk(2**20, max_chunk=0)

    def test_overflowing_primes_rejected(self):
        with pytest.raises(ValueError, match="32-bit primes"):
            kernels.lazy_reduction_chunk(2**33)

    def test_boundary_chunk_no_overflow_in_kernel(self):
        """Drive ks_inner at exactly the boundary chunk size with
        worst-case residues; int64 overflow would trip the
        error-on-RuntimeWarning filter and corrupt the residues."""
        max_q = 2**31 - 1
        chunk = kernels.lazy_reduction_chunk(max_q)
        num_digits = 3
        factors = np.full((num_digits, 1, 4), max_q - 1, dtype=np.int64)
        pairs = np.full((2, num_digits, 1, 4), max_q - 1, dtype=np.int64)
        mod_col = np.array([[max_q]], dtype=np.int64)
        want = (num_digits * pow(max_q - 1, 2, max_q)) % max_q
        for forced in (chunk, 1, 2):
            got = kernels.get("ks_inner")(factors, pairs, mod_col, forced)
            assert got.shape == (2, 1, 4)
            assert np.all(got == want)

    def test_boundary_chunk_no_overflow_in_stacked_kernel(self):
        """Same worst-case drive for ks_inner_stacked (shared digits
        against a key stack, (C, K, O, N) output layout)."""
        max_q = 2**31 - 1
        chunk = kernels.lazy_reduction_chunk(max_q)
        num_digits, num_offsets = 3, 5
        digits = np.full((num_digits, 1, 4), max_q - 1, dtype=np.int64)
        keys = np.full(
            (num_offsets, 2, num_digits, 1, 4), max_q - 1, dtype=np.int64
        )
        mod_col = np.array([[max_q]], dtype=np.int64)
        want = (num_digits * pow(max_q - 1, 2, max_q)) % max_q
        for forced in (chunk, 1, 2):
            got = kernels.get("ks_inner_stacked")(digits, keys, mod_col, forced)
            assert got.shape == (2, 1, num_offsets, 4)
            assert np.all(got == want)

    def test_stacked_kernel_backends_and_chunks_agree(self):
        """Random-data equality of every ks_inner_stacked backend and
        chunking against a materialize-then-sum reference."""
        from repro.kernels import ops

        rng = np.random.default_rng(5)
        digits = rng.integers(0, 2**29, size=(4, 6, 16), dtype=np.int64)
        keys = rng.integers(0, 2**29, size=(3, 2, 4, 6, 16), dtype=np.int64)
        mod_col = rng.integers(2**28, 2**29, size=(6, 1)).astype(np.int64)
        ref = np.moveaxis(
            (digits[None, None] * keys).sum(axis=2) % mod_col, 0, 2
        )
        for impl in (ops.ks_inner_stacked_numpy, ops.ks_inner_stacked_threaded):
            for chunk in (8, 2, 1):
                assert np.array_equal(impl(digits, keys, mod_col, chunk), ref)


# ---------------------------------------------------------------------------
# Naive references (independent of the kernels module)
# ---------------------------------------------------------------------------
def naive_hoisted_raw(ctx, ct, offsets):
    """Per-offset rotate_hoisted_raw: the seed's loop, kernel-free."""
    digits = ctx._ks_decompose(ct.c1, ct.level)
    ks_chain = ctx._ks_chain(ct.level)
    mod_col = ctx.basis.moduli_column(ks_chain)
    n = ctx.params.ring_degree
    out = {}
    for offset in sorted(offsets, key=galois_offset_key):
        exponent = ctx.galois_offset_exponent(offset)
        key = ctx.galois_key(exponent, max_level=ct.level)
        perm = galois_eval_permutation(n, exponent)
        ba = ctx._key_tensors(key, ct.level)
        # Digit counts at toy scale fit one lazy pass: plain product-sum.
        acc = (digits[..., perm] * ba).sum(axis=1) % mod_col
        out[offset] = (ct.c0.automorphism(exponent), acc)
    return out


def assert_raw_equal(got, want):
    assert set(got) == set(want)
    for offset in want:
        rot0_w, acc_w = want[offset]
        rot0_g, acc_g = got[offset]
        assert np.array_equal(rot0_g.data, rot0_w.data)
        assert np.array_equal(np.asarray(acc_g), acc_w)


# ---------------------------------------------------------------------------
# Stacked rotate_hoisted_raw
# ---------------------------------------------------------------------------
class TestStackedHoistedRaw:
    @pytest.mark.parametrize("level_drop", [0, 1, 2])
    @pytest.mark.parametrize(
        "steps",
        [
            [1, 3, 7],
            [1, ("conj", 0), ("conj", 5)],
            [2, 5, ("conj", 2), 9, ("conj", 0)],
        ],
    )
    def test_bit_exact_vs_per_offset_loop(self, toy_backend, steps, level_drop):
        ctx = toy_backend.context
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        ct = toy_backend.level_down(ct, ct.level - level_drop)
        got = ctx.rotate_hoisted_raw(ct, steps)
        want = naive_hoisted_raw(ctx, ct, set(got))
        assert_raw_equal(got, want)

    def test_alpha3_partial_digit_group(self):
        backend = ToyBackend(
            toy_parameters(
                ring_degree=128,
                max_level=5,
                num_special_primes=3,
                ks_alpha=3,
                scale_bits=18,
            ),
            seed=13,
        )
        ctx = backend.context
        ct = backend.encode_encrypt(np.linspace(-1, 1, backend.slot_count))
        # level 3 -> 4 limbs -> dnum 2 with a partial (1-limb) group.
        ct = backend.level_down(ct, 3)
        got = ctx.rotate_hoisted_raw(ct, [1, 5, ("conj", 1)])
        assert_raw_equal(got, naive_hoisted_raw(ctx, ct, set(got)))

    def test_forced_chunk_fallback(self, toy_backend):
        ctx = toy_backend.context
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        baseline = ctx.rotate_hoisted_raw(ct, [1, 4, 6])
        forced = ctx.rotate_hoisted_raw(ct, [1, 4, 6], _max_chunk=1)
        assert_raw_equal(forced, baseline)

    def test_compressed_keys_at_level_bound(self, toy_backend):
        ctx = toy_backend.context
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        bound = 2
        ct = toy_backend.level_down(ct, bound)
        steps = [1, 3, ("conj", 1)]
        for step in steps:
            ctx.generate_compressed_galois_key(
                ctx.galois_offset_exponent(step), max_level=bound
            )
        got = ctx.rotate_hoisted_raw(ct, steps)
        assert_raw_equal(got, naive_hoisted_raw(ctx, ct, set(got)))

    def test_stacked_key_cache_survives_key_regeneration(self, toy_backend):
        """The stacked key tensor cache is id-validated: regenerating a
        switching key must invalidate the stack, not serve stale rows."""
        ctx = toy_backend.context
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        steps = [2, 6]
        first = ctx.rotate_hoisted_raw(ct, steps)
        again = ctx.rotate_hoisted_raw(ct, steps)
        assert_raw_equal(again, first)
        # Force-replace one key object (same exponent, fresh pairs).
        exponent = ctx.galois_offset_exponent(2)
        del ctx.keys.galois[exponent]
        ctx.galois_key(exponent, max_level=ct.level)
        regen = ctx.rotate_hoisted_raw(ct, steps)
        assert_raw_equal(regen, naive_hoisted_raw(ctx, ct, set(regen)))

    def test_single_offset_path_matches_stack(self, toy_backend):
        ctx = toy_backend.context
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        single = ctx.rotate_hoisted_raw(ct, [5])
        multi = ctx.rotate_hoisted_raw(ct, [5, 1])
        rot0_s, acc_s = single[5]
        rot0_m, acc_m = multi[5]
        assert np.array_equal(rot0_s.data, rot0_m.data)
        assert np.array_equal(np.asarray(acc_s), np.asarray(acc_m))

    def test_threaded_matches_numpy(self, toy_backend):
        ctx = toy_backend.context
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        steps = [1, 3, ("conj", 2)]
        kernels.select_backend("numpy")
        ref = ctx.rotate_hoisted_raw(ct, steps)
        kernels.select_backend("threaded")
        got = ctx.rotate_hoisted_raw(ct, steps)
        assert_raw_equal(got, ref)


# ---------------------------------------------------------------------------
# Grouped fused matvec / rotate-sum (toy)
# ---------------------------------------------------------------------------
def _matvec_terms(backend, num_in, num_out, offs):
    rng = np.random.default_rng(3)
    terms = {}
    for bo in range(num_out):
        for bi in range(num_in):
            for off in offs[(bo + bi) % len(offs)]:
                terms[(bo, bi, off)] = rng.uniform(
                    -1, 1, backend.slot_count
                )
    return terms


class TestGroupedFusedMatvec:
    OFFS = [[0, 1, 3], [0, ("conj", 1), 2], [1, ("conj", 0)]]

    def test_forced_chunk_fallback_bit_exact(self, toy_backend):
        cts = [
            toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count)),
            toy_backend.encode_encrypt(np.linspace(1, -1, toy_backend.slot_count)),
        ]
        terms = _matvec_terms(toy_backend, 2, 3, self.OFFS)
        scale = toy_backend.params.scale
        base = toy_backend._matvec_fused_no_charge(cts, terms, 3, scale)
        forced = toy_backend._matvec_fused_no_charge(
            cts, terms, 3, scale, _max_chunk=1
        )
        for got, want in zip(forced, base):
            assert np.array_equal(got.c0.data, want.c0.data)
            assert np.array_equal(got.c1.data, want.c1.data)

    def test_threaded_matches_numpy(self, toy_backend):
        cts = [
            toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count)),
            toy_backend.encode_encrypt(np.linspace(1, -1, toy_backend.slot_count)),
        ]
        terms = _matvec_terms(toy_backend, 2, 2, self.OFFS)
        scale = toy_backend.params.scale
        kernels.select_backend("numpy")
        ref = toy_backend._matvec_fused_no_charge(cts, terms, 2, scale)
        kernels.select_backend("threaded")
        got = toy_backend._matvec_fused_no_charge(cts, terms, 2, scale)
        for g, w in zip(got, ref):
            assert np.array_equal(g.c0.data, w.c0.data)
            assert np.array_equal(g.c1.data, w.c1.data)

    def test_rotate_sum_threaded_matches_numpy(self, toy_backend):
        ct = toy_backend.encode_encrypt(np.linspace(-1, 1, toy_backend.slot_count))
        steps = [1, 2, 5]
        kernels.select_backend("numpy")
        ref = toy_backend._rotate_sum_no_charge(ct, steps)
        kernels.select_backend("threaded")
        got = toy_backend._rotate_sum_no_charge(ct, steps)
        assert np.array_equal(got.c0.data, ref.c0.data)
        assert np.array_equal(got.c1.data, ref.c1.data)


# ---------------------------------------------------------------------------
# Simulator batched gathers
# ---------------------------------------------------------------------------
class TestSimBatchedGathers:
    def test_matvec_matches_roll_loop(self):
        backend = SimBackend(toy_parameters(ring_degree=256), noise_free=True)
        cts = [
            backend.encode_encrypt(np.linspace(-1, 1, backend.slot_count)),
            backend.encode_encrypt(np.cos(np.arange(backend.slot_count))),
        ]
        offs = [[0, 1, 3], [("conj", 2), 5], [0, ("conj", 0)]]
        terms = _matvec_terms(backend, 2, 3, offs)
        outs = backend._matvec_fused_no_charge(
            cts, terms, 3, backend.params.scale
        )
        for bo, out in enumerate(outs):
            want = np.zeros(backend.slot_count)
            bo_terms = sorted(
                (
                    (bi, off)
                    for (bo2, bi, off) in terms
                    if bo2 == bo
                ),
                key=lambda t: (t[0], galois_offset_key(t[1])),
            )
            for bi, off in bo_terms:
                vec = terms[(bo, bi, off)]
                step = off[1] if isinstance(off, tuple) else off
                want = want + vec * np.roll(cts[bi].values, -step)
            assert np.array_equal(out.values, want)

    def test_rotate_sum_matches_roll_loop(self):
        backend = SimBackend(toy_parameters(ring_degree=256), noise_free=True)
        ct = backend.encode_encrypt(np.sin(np.arange(backend.slot_count)))
        steps = [1, 4, 9]
        out = backend._rotate_sum_no_charge(ct, steps)
        want = ct.values.copy()
        for step in steps:
            want = want + np.roll(ct.values, -step)
        assert np.array_equal(out.values, want)


# ---------------------------------------------------------------------------
# NTT stage kernel
# ---------------------------------------------------------------------------
class TestNttStageKernel:
    def test_threaded_transform_matches_numpy(self, toy_backend):
        ctx = toy_backend.context
        engine = ctx.basis.engine
        rng = np.random.default_rng(5)
        rows = list(range(engine.num_primes))
        data = rng.integers(
            0, engine._full.q, size=(3, len(rows), ctx.params.ring_degree)
        )
        kernels.select_backend("numpy")
        fwd_ref = engine.forward(data, rows)
        inv_ref = engine.inverse(fwd_ref, rows)
        kernels.select_backend("threaded")
        fwd_thr = engine.forward(data, rows)
        inv_thr = engine.inverse(fwd_thr, rows)
        assert np.array_equal(fwd_thr, fwd_ref)
        assert np.array_equal(inv_thr, inv_ref)
        assert np.array_equal(inv_ref, data)


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------
class TestTelemetry:
    def test_ledger_snapshot_reports_backend(self):
        snap = OpLedger().snapshot()
        assert snap["kernel_backend"] == kernels.active_backend()
        kernels.select_backend("threaded")
        assert OpLedger().snapshot()["kernel_backend"] == "threaded"

    def test_backend_property(self, toy_backend):
        kernels.select_backend("numpy")
        assert toy_backend.kernel_backend == "numpy"
        kernels.select_backend("threaded")
        assert toy_backend.kernel_backend == "threaded"
