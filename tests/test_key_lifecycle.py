"""Tenant-scale key & artifact lifecycle (docs/keys.md).

Covers the PRG-seeded switching keys (expansion bit-exact against the
stored halves, across ``ks_alpha`` groupings and compressed level
bounds), the :class:`repro.serve.keys.KeyRegistry` spill-to-disk path
(promoted tenants bit-identical to never-spilled ones, pins respected
under concurrency, loud spill-file validation), the weight-delta
artifact format (resolution, atomic apply, fingerprint pinning), the
hot reload of a running pool, and the telemetry that reports it all
(stats schema v3, key-bytes Prometheus gauges).
"""

import json
import threading

import numpy as np
import pytest

from repro import serve
from repro.backend import ToyBackend
from repro.ckks.context import CkksContext
from repro.ckks.keys import (
    KEY_PRG_SEED_BYTES,
    SwitchingKey,
    expand_a_half,
    expand_uniform_row,
)
from repro.ckks.params import toy_parameters
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork
from repro.serve import (
    ArtifactDeltaError,
    KeyRegistry,
    KeySpillError,
    apply_artifact_delta,
    artifact_fingerprint,
    load_artifact,
    save_artifact,
    save_artifact_delta,
)
from repro.serve.keys import default_backend_factory
from repro.serve.runtime import InferenceServer
from repro.serve.stats import (
    STATS_SCHEMA_VERSION,
    ServerStats,
    StatsSchemaError,
    WorkerStats,
)


def _tiny_params(ks_alpha: int = 1, max_level: int = 4):
    return toy_parameters(
        ring_degree=64,
        max_level=max_level,
        boot_levels=1,
        scale_bits=24,
        num_special_primes=max(1, ks_alpha),
        ks_alpha=ks_alpha,
    )


def _mlp_params():
    return toy_parameters(
        ring_degree=1024, max_level=6, boot_levels=1, scale_bits=24
    )


def _make_net(seed=0, perturb_last=None):
    init.seed_init(seed)
    net = SecureMlp(input_pixels=64, hidden=16)
    if perturb_last is not None:
        rng = np.random.default_rng(perturb_last)
        for p in net.fc3.parameters():
            p.data = p.data + rng.normal(0, 1e-3, p.data.shape)
    onet = OrionNetwork(net, (1, 8, 8))
    calib_rng = np.random.default_rng(seed)
    onet.fit([calib_rng.normal(0, 0.5, (8, 1, 8, 8))])
    return onet


@pytest.fixture(scope="module")
def mlp_deployment(tmp_path_factory):
    """A base artifact, a weight-perturbed full re-export, and the delta
    between them — the raw material for the lifecycle tests below."""
    params = _mlp_params()
    root = tmp_path_factory.mktemp("lifecycle")
    base_path = str(root / "base.npz")
    _make_net(seed=0).export(base_path, params)

    onet2 = _make_net(seed=0, perturb_last=42)
    full_path = str(root / "retrained_full.npz")
    compiled2 = onet2.compile(params)
    save_artifact(compiled2, params, full_path)
    delta_path = str(root / "retrained_delta.npz")
    save_artifact_delta(onet2.compile(params), params, base_path, delta_path)
    return params, base_path, full_path, delta_path


class TestSeedExpansion:
    @pytest.mark.parametrize("ks_alpha", [1, 2, 3])
    def test_expanded_a_halves_bit_exact(self, ks_alpha):
        """Every key the context generates carries a PRG seed whose
        expansion reproduces the stored uniform halves bit for bit."""
        context = CkksContext(_tiny_params(ks_alpha), seed=5)
        context.generate_rotation_keys([1, 3])
        keys = [context.keys.relin] + list(context.keys.galois.values())
        assert keys and all(k.seed is not None for k in keys)
        for key in keys:
            assert len(key.seed) == KEY_PRG_SEED_BYTES
            rebuilt = SwitchingKey.from_seed(
                key.seed,
                [b for b, _ in key.pairs],
                context.basis,
                max_level=key.max_level,
            )
            for (_, a), (_, a2) in zip(key.pairs, rebuilt.pairs):
                assert np.array_equal(a.data, a2.data)

    @pytest.mark.parametrize("ks_alpha", [1, 2])
    def test_expansion_at_compressed_level_bounds(self, ks_alpha):
        """Compressed keys (per-step level bounds) expand from the same
        seed: rows are keyed by prime *value*, not chain position, so
        restriction composes with seed expansion automatically."""
        params = _tiny_params(ks_alpha)
        context = CkksContext(params, seed=9)
        context.generate_rotation_keys([1], levels={1: params.max_level - 2})
        for key in context.keys.galois.values():
            for digit, (b, a) in enumerate(key.pairs):
                expanded = expand_a_half(
                    key.seed, digit, context.basis, b.primes
                )
                assert np.array_equal(a.data, expanded.data)

    def test_expansion_is_deterministic_and_distinct(self):
        seed = b"\x07" * KEY_PRG_SEED_BYTES
        row = expand_uniform_row(seed, 0, 65537, 64)
        assert np.array_equal(row, expand_uniform_row(seed, 0, 65537, 64))
        assert not np.array_equal(row, expand_uniform_row(seed, 1, 65537, 64))
        assert not np.array_equal(
            row, expand_uniform_row(b"\x08" * KEY_PRG_SEED_BYTES, 0, 65537, 64)
        )
        assert row.min() >= 0 and row.max() < 65537

    def test_seeded_size_at_least_1_8x_smaller(self):
        context = CkksContext(_tiny_params(2), seed=3)
        context.generate_rotation_keys([1, 2, 3])
        stored = seeded = 0
        for key in [context.keys.relin] + list(context.keys.galois.values()):
            for b, a in key.pairs:
                stored += b.data.nbytes + a.data.nbytes
            seeded += key.size_bytes()
        assert stored / seeded >= 1.8


class TestSpillPromote:
    def _registry(self, manifest, tmp_path, **kwargs):
        return KeyRegistry(
            manifest, cache_dir=str(tmp_path / "keycache"), **kwargs
        )

    def test_promoted_tenant_bit_exact_vs_never_spilled(
        self, mlp_deployment, tmp_path
    ):
        params, base_path, _, _ = mlp_deployment
        loaded = load_artifact(base_path)
        rng = np.random.default_rng(11)
        first, second = (rng.normal(0, 0.5, (1, 8, 8)) for _ in range(2))

        registry = self._registry(loaded.manifest, tmp_path, max_clients=1)
        control = KeyRegistry(loaded.manifest, max_clients=4)

        out_first = loaded.program.run(
            registry.backend_for("alice"), first
        )
        registry.backend_for("bob")  # evicts alice -> spill file
        assert registry.resident_clients() == ["bob"]
        assert registry.spilled_count() == 1
        assert registry.spill_count == 1
        # Spilled accounting: bytes come from the file, not RAM.
        assert registry.key_material_bytes("alice") > 0
        key_bytes = registry.key_bytes()
        assert key_bytes["spilled"] > 0 and key_bytes["resident"] > 0

        ctrl = control.backend_for("alice")
        assert np.array_equal(out_first, loaded.program.run(ctrl, first))
        promoted = registry.backend_for("alice")  # transparent promote
        assert registry.promote_count == 1
        assert registry.keygen_count == 2  # alice + bob, never a re-keygen
        # Alice's spill file is retired; bob got demoted in her place.
        assert registry.resident_clients() == ["alice"]
        assert registry.spilled_count() == 1
        assert np.array_equal(
            loaded.program.run(promoted, second),
            loaded.program.run(ctrl, second),
        )

    def test_no_cache_dir_keeps_discard_semantics(self, mlp_deployment):
        params, base_path, _, _ = mlp_deployment
        loaded = load_artifact(base_path)
        registry = KeyRegistry(loaded.manifest, max_clients=1)
        registry.backend_for("alice")
        registry.backend_for("bob")
        registry.backend_for("alice")  # discarded, so full re-keygen
        assert registry.keygen_count == 3
        assert registry.spilled_count() == 0

    def test_pinned_client_never_spills(self, mlp_deployment, tmp_path):
        params, base_path, _, _ = mlp_deployment
        loaded = load_artifact(base_path)
        registry = self._registry(loaded.manifest, tmp_path, max_clients=1)
        with registry.lease("alice"):
            registry.backend_for("bob")
            registry.backend_for("carol")
            assert "alice" in registry.resident_clients()
            with pytest.raises(RuntimeError, match="in-flight"):
                registry.spill("alice")
        # Pin released: the deferred over-capacity demotion fires and
        # alice's keys move to disk instead of being destroyed.
        assert "alice" not in registry.resident_clients()
        assert registry.spilled_count() >= 1
        assert registry.backend_for("alice") is not None  # promotes back
        assert registry.promote_count >= 1

    def test_concurrent_pin_lease_while_churning(
        self, mlp_deployment, tmp_path
    ):
        """Leases held across threads keep their client resident while
        other tenants churn through a size-1 registry."""
        params, base_path, _, _ = mlp_deployment
        loaded = load_artifact(base_path)
        registry = self._registry(loaded.manifest, tmp_path, max_clients=1)
        registry.backend_for("alice")
        stop = threading.Event()
        failures = []

        def hold_lease():
            try:
                for _ in range(5):
                    with registry.lease("alice"):
                        if "alice" not in registry.resident_clients():
                            failures.append("alice demoted while leased")
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(repr(exc))
            finally:
                stop.set()

        thread = threading.Thread(target=hold_lease)
        thread.start()
        churn = 0
        while not stop.is_set() and churn < 50:
            registry.backend_for(f"tenant-{churn % 3}")
            churn += 1
        thread.join()
        assert not failures
        assert registry.pin_count("alice") == 0

    def test_spill_file_validation_is_loud(self, mlp_deployment, tmp_path):
        params, base_path, _, _ = mlp_deployment
        loaded = load_artifact(base_path)
        registry = self._registry(loaded.manifest, tmp_path, max_clients=2)
        registry.backend_for("alice")
        assert registry.spill("alice") is True
        path = registry._spill_path("alice")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["__spill__"]).decode("utf-8"))
            arrays = {k: data[k] for k in data.files if k != "__spill__"}
        meta["version"] = 999
        arrays["__spill__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(open(path, "wb"), **arrays)
        with pytest.raises(KeySpillError, match="version"):
            registry.backend_for("alice")

    def test_evict_removes_spill_file(self, mlp_deployment, tmp_path):
        params, base_path, _, _ = mlp_deployment
        loaded = load_artifact(base_path)
        registry = self._registry(loaded.manifest, tmp_path, max_clients=2)
        registry.backend_for("alice")
        registry.spill("alice")
        assert registry.spilled_count() == 1
        assert registry.evict("alice") is True
        assert registry.spilled_count() == 0
        with pytest.raises(KeyError):
            registry.key_material_bytes("alice")


class TestDeltaArtifacts:
    def test_delta_is_smaller_and_resolves_bit_exact(self, mlp_deployment):
        params, base_path, full_path, delta_path = mlp_deployment
        import os

        assert os.path.getsize(delta_path) < os.path.getsize(full_path)
        resolved = load_artifact(delta_path, base_path=base_path)
        full = load_artifact(full_path)
        img = np.random.default_rng(3).normal(0, 0.5, (1, 8, 8))
        assert np.array_equal(
            resolved.program.run_cleartext_packed(img),
            full.program.run_cleartext_packed(img),
        )
        assert np.array_equal(
            resolved.program.run(ToyBackend(params, seed=7), img),
            full.program.run(ToyBackend(params, seed=7), img),
        )

    def test_delta_without_base_fails_loudly(self, mlp_deployment):
        _, base_path, _, delta_path = mlp_deployment
        with pytest.raises(ArtifactDeltaError, match="base_path"):
            load_artifact(delta_path)
        with pytest.raises(ArtifactDeltaError, match="not a delta"):
            load_artifact(base_path, base_path=base_path)

    def test_apply_is_atomic_and_pins_fingerprint(
        self, mlp_deployment, tmp_path
    ):
        params, base_path, full_path, delta_path = mlp_deployment
        out = str(tmp_path / "merged.npz")
        apply_artifact_delta(base_path, delta_path, out)
        merged = load_artifact(out)  # a full artifact, loads standalone
        full = load_artifact(full_path)
        img = np.random.default_rng(4).normal(0, 0.5, (1, 8, 8))
        assert np.array_equal(
            merged.program.run(ToyBackend(params, seed=7), img),
            full.program.run(ToyBackend(params, seed=7), img),
        )
        # A delta refuses to resolve against anything but its exact base.
        with pytest.raises(ArtifactDeltaError, match="fingerprint"):
            load_artifact(delta_path, base_path=out)

    def test_structural_mismatch_refuses_delta(self, mlp_deployment, tmp_path):
        params, base_path, _, _ = mlp_deployment
        init.seed_init(8)
        other = OrionNetwork(SecureMlp(input_pixels=64, hidden=32), (1, 8, 8))
        other.fit([np.random.default_rng(8).normal(0, 0.5, (8, 1, 8, 8))])
        with pytest.raises((ArtifactDeltaError,)):
            save_artifact_delta(
                other.compile(params),
                params,
                base_path,
                str(tmp_path / "bad.npz"),
            )


class TestHotReload:
    def _solo(self, path, backend):
        server = InferenceServer(
            serve.ArtifactMap(path).load(),
            backend,
            batching=True,
            max_wait_seconds=0.0,
        )
        return server

    def test_pool_hot_swaps_delta_bit_exact(self, mlp_deployment, tmp_path):
        """Apply a weight delta over the served file, ``reload()``, and
        demand both phases bit-exact against a solo replay that swaps
        artifacts at the same point with the same backend."""
        params, base_path, _, delta_path = mlp_deployment
        served = str(tmp_path / "served.npz")
        import shutil

        shutil.copy(base_path, served)
        rng = np.random.default_rng(21)
        img1, img2 = (rng.normal(0, 0.5, (1, 8, 8)) for _ in range(2))

        config = serve.ServerConfig(workers=1, batch_window_seconds=0.0)
        with serve.open(served, config) as server:
            server.warm()
            server.submit(img1, client_id="alice", now=0.0)
            (r1,) = server.drain()
            server.reload()  # same bytes: a no-op swap must be invisible
            server.submit(img2, client_id="alice", now=0.0)
            (r2,) = server.drain()

        backend = default_backend_factory(params, 0)
        solo1 = self._solo(served, backend)
        solo1.warm()
        solo1.submit(img1, client_id="alice", now=0.0)
        (s1,) = solo1.step(now=1e9)
        solo2 = self._solo(served, backend)
        solo2.submit(img2, client_id="alice", now=0.0)
        (s2,) = solo2.step(now=1e9)
        assert np.array_equal(r1.output, s1.output)
        assert np.array_equal(r2.output, s2.output)

        # Now actually swap the weights under the pool and re-check the
        # output changes to the retrained network's.
        with serve.open(served, config) as server:
            server.warm()
            server.submit(img1, client_id="alice", now=0.0)
            (before,) = server.drain()
            apply_artifact_delta(served, delta_path)
            server.reload()
            server.submit(img1, client_id="alice", now=0.0)
            (after,) = server.drain()
        assert not np.array_equal(before.output, after.output)
        retrained = load_artifact(served)
        expected = retrained.program.run_cleartext_packed(img1)
        np.testing.assert_allclose(
            after.output[: expected.size], expected.ravel(), atol=0.1
        )

    def test_reload_refuses_undrained_queues(self, mlp_deployment, tmp_path):
        params, base_path, _, _ = mlp_deployment
        served = str(tmp_path / "served.npz")
        import shutil

        shutil.copy(base_path, served)
        config = serve.ServerConfig(workers=1, batch_window_seconds=0.0)
        with serve.open(served, config) as server:
            img = np.random.default_rng(5).normal(0, 0.5, (1, 8, 8))
            server.submit(img, client_id="alice", now=0.0)
            with pytest.raises(RuntimeError, match="in flight|in-flight"):
                server.reload()
            server.drain()

    def test_reload_refuses_different_key_manifest(
        self, mlp_deployment, tmp_path
    ):
        params, base_path, _, _ = mlp_deployment
        served = str(tmp_path / "served.npz")
        import shutil

        shutil.copy(base_path, served)
        config = serve.ServerConfig(workers=1, batch_window_seconds=0.0)
        with serve.open(served, config) as server:
            init.seed_init(8)
            other = OrionNetwork(
                SecureMlp(input_pixels=64, hidden=32), (1, 8, 8)
            )
            other.fit(
                [np.random.default_rng(8).normal(0, 0.5, (8, 1, 8, 8))]
            )
            save_artifact(other.compile(params), params, served)
            with pytest.raises(RuntimeError, match="manifest"):
                server.reload()


def _worker_stats(**overrides):
    base = dict(
        worker_id=0,
        requests_served=1,
        batches_run=1,
        queue_depth=0,
        capacity=8,
        preloaded_plaintexts=0,
        modeled_seconds=0.0,
        rotations=0,
        bootstraps=0,
        compilations_since_load=0,
        placements_since_load=0,
        kernel_backend="numpy",
        mmap_backed=True,
    )
    base.update(overrides)
    return WorkerStats(**base)


class TestTelemetry:
    def test_stats_v2_payload_rejected_with_hint(self):
        stats = ServerStats(
            schema_version=STATS_SCHEMA_VERSION,
            artifacts=("mlp",),
            requests_submitted=1,
            requests_admitted=1,
            requests_rejected=0,
            requests_completed=1,
            in_flight=0,
            kernel_backend="numpy",
            workers=(_worker_stats(),),
        )
        payload = stats.to_payload()
        assert payload["schema_version"] == STATS_SCHEMA_VERSION == 3
        payload["schema_version"] = 2
        with pytest.raises(StatsSchemaError, match="key-material"):
            ServerStats.from_payload(payload)

    def test_stats_roundtrip_carries_key_bytes(self):
        stats = _worker_stats(
            worker_id=3,
            key_bytes_resident=1024,
            key_bytes_spilled=2048,
            tenants_resident=2,
            tenants_spilled=1,
        )
        back = WorkerStats.from_payload(stats.to_payload())
        assert back.key_bytes_resident == 1024
        assert back.key_bytes_spilled == 2048
        assert back.tenants_resident == 2
        assert back.tenants_spilled == 1

    def test_metrics_expose_key_material_gauges(
        self, mlp_deployment, tmp_path
    ):
        params, base_path, _, _ = mlp_deployment
        config = serve.ServerConfig(
            workers=1,
            batch_window_seconds=0.0,
            key_cache_dir=str(tmp_path / "keycache"),
        )
        with serve.open(base_path, config) as server:
            img = np.random.default_rng(6).normal(0, 0.5, (1, 8, 8))
            server.submit(img, client_id="alice", now=0.0)
            server.drain()
            text = server.metrics_text()
            stats = server.stats()
        assert 'repro_key_material_bytes{' in text
        assert 'state="resident"' in text
        assert "repro_key_spills_total" in text
        assert "repro_key_promotes_total" in text
        assert any(w.key_bytes_resident > 0 for w in stats.workers)
