"""Tests for the model zoo: shapes, parameter counts, traceability."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, no_grad
from repro.models import (
    AlexNet,
    LeNet5,
    LolaCnn,
    MobileNetV1,
    SecureMlp,
    Vgg16,
    YoloV1,
    resnet_cifar,
    resnet_imagenet,
    square_act,
)
from repro.nn import init
from repro.trace.graph import TracedValue, tracer
from repro.trace.sese import build_region_tree


def forward_shape(net, shape):
    net.eval()
    with no_grad():
        return net(Tensor(np.zeros((2,) + shape))).shape


class TestShapes:
    def test_mnist_models(self):
        init.seed_init(0)
        assert forward_shape(SecureMlp(), (1, 28, 28)) == (2, 10)
        assert forward_shape(LolaCnn(), (1, 28, 28)) == (2, 10)
        assert forward_shape(LeNet5(), (1, 28, 28)) == (2, 10)

    def test_cifar_models(self):
        init.seed_init(0)
        assert forward_shape(AlexNet(width=8), (3, 32, 32)) == (2, 10)
        assert forward_shape(Vgg16(width=8), (3, 32, 32)) == (2, 10)
        assert forward_shape(resnet_cifar(20, width=8), (3, 32, 32)) == (2, 10)

    def test_imagenet_models(self):
        init.seed_init(0)
        for depth in (18, 34, 50):
            net = resnet_imagenet(depth, width=8, classes=20)
            assert forward_shape(net, (3, 64, 64)) == (2, 20)

    def test_mobilenet(self):
        init.seed_init(0)
        net = MobileNetV1(width=8, num_blocks=4, classes=20)
        assert forward_shape(net, (3, 64, 64)) == (2, 20)

    def test_yolo(self):
        init.seed_init(0)
        net = YoloV1(grid=2, classes=4, width=8, head_width=16, fc_hidden=16)
        assert forward_shape(net, (3, 128, 128)) == (2, 2 * 2 * (2 * 5 + 4))

    def test_cifar_resnet_depth_validation(self):
        with pytest.raises(ValueError):
            resnet_cifar(21)
        with pytest.raises(ValueError):
            resnet_imagenet(29)


class TestPaperScaleParameterCounts:
    """Table 2's Params (M) column."""

    @pytest.mark.parametrize(
        "builder, expected_m, tolerance",
        [
            (lambda: SecureMlp(), 0.12, 0.02),
            (lambda: resnet_cifar(20), 0.27, 0.03),
            (lambda: resnet_imagenet(18, classes=200), 11.3, 0.3),
            (lambda: resnet_imagenet(34), 21.8, 0.5),
            (lambda: resnet_imagenet(50), 25.6, 0.5),
            (lambda: YoloV1(), 139.0, 6.0),
        ],
    )
    def test_param_counts(self, builder, expected_m, tolerance):
        init.seed_init(0)
        net = builder()
        millions = sum(p.size for p in net.parameters()) / 1e6
        assert abs(millions - expected_m) < tolerance, f"{millions:.2f}M"


class TestTraceability:
    """Every zoo model must trace into a well-formed region tree."""

    @pytest.mark.parametrize(
        "builder, shape, regions",
        [
            (lambda: SecureMlp(64, 16), (1, 8, 8), 0),
            (lambda: resnet_cifar(20, act=square_act(), width=4), (3, 8, 8), 9),
            (lambda: MobileNetV1(width=4, num_blocks=3, act=square_act(), classes=4),
             (3, 16, 16), 0),
            (lambda: resnet_imagenet(50, act=square_act(), width=4, classes=4),
             (3, 32, 32), 16),
        ],
    )
    def test_region_tree(self, builder, shape, regions):
        init.seed_init(0)
        net = builder()
        net.eval()
        with no_grad():
            with tracer() as graph:
                net(TracedValue(Tensor(np.zeros((1,) + shape)), graph.input_uid))
        tree = build_region_tree(graph)
        assert tree.region_count() == regions
        assert len(tree.layer_nodes()) == len(graph.nodes)

    def test_yolo_decode_roundtrip(self):
        init.seed_init(0)
        net = YoloV1(grid=2, classes=3, width=4, head_width=8, fc_hidden=8)
        rng = np.random.default_rng(0)
        output = rng.normal(size=2 * 2 * (2 * 5 + 3))
        detections = net.decode(output, threshold=0.0)
        for cls, conf, cx, cy, w, h in detections:
            assert 0 <= cls < 3
            assert 0.0 <= cx <= 1.0 and 0.0 <= cy <= 1.0
