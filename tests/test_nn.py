"""Tests for the module system, layers, optimizers, and training."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.datasets import DataLoader, mnist_like


class TestModuleRegistry:
    def test_parameter_registration(self):
        layer = nn.Linear(4, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_module_traversal(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [n for n, _ in model.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.BatchNorm2d(3))
        model.eval()
        assert not model.training
        assert not next(iter(model)).training

    def test_state_dict_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Conv2d(1, 2, 3), nn.BatchNorm2d(2))
        model.state_dict()["1.running_mean"][:] = 0  # copy, no effect
        path = str(tmp_path / "weights.npz")
        model.save(path)
        clone = nn.Sequential(nn.Conv2d(1, 2, 3), nn.BatchNorm2d(2))
        clone.load(path)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_load_missing_key_raises(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_zero_grad(self):
        layer = nn.Linear(3, 1)
        out = layer(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_conv_shape_inference_matches_forward(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = conv(Tensor(np.zeros((1, 3, 32, 32))))
        assert out.shape[1:] == conv.output_shape((3, 32, 32))

    def test_conv_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)

    def test_linear_shapes(self):
        layer = nn.Linear(10, 5)
        out = layer(Tensor(np.zeros((7, 10))))
        assert out.shape == (7, 5)

    def test_batchnorm_folding(self):
        """folded_affine must reproduce eval-mode batchnorm exactly."""
        bn = nn.BatchNorm2d(4)
        bn.running_mean[:] = np.array([1.0, -2.0, 0.5, 3.0])
        bn.running_var[:] = np.array([4.0, 1.0, 0.25, 9.0])
        bn.weight.data = np.array([2.0, 1.0, -1.0, 0.5])
        bn.bias.data = np.array([0.0, 1.0, 2.0, -1.0])
        bn.eval()
        x = np.random.default_rng(0).normal(size=(2, 4, 3, 3))
        expected = bn(Tensor(x)).data
        scale, shift = bn.folded_affine()
        folded = x * scale[None, :, None, None] + shift[None, :, None, None]
        assert np.allclose(folded, expected, atol=1e-10)

    def test_avgpool_output_shape_helper(self):
        pool = nn.AvgPool2d(2)
        assert pool.output_shape((8, 16, 16)) == (8, 8, 8)

    def test_adaptive_pool_is_global(self):
        pool = nn.AdaptiveAvgPool2d(1)
        x = np.random.default_rng(0).normal(size=(2, 3, 7, 7))
        out = pool(Tensor(x)).data
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out[..., 0, 0], x.mean(axis=(2, 3)))

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_activations_match_functional(self):
        x = Tensor(np.linspace(-2, 2, 9))
        assert np.allclose(nn.ReLU()(x).data, F.relu(x).data)
        assert np.allclose(nn.SiLU()(x).data, F.silu(x).data)
        assert np.allclose(nn.Square()(x).data, x.data**2)


class TestOptim:
    def test_sgd_reduces_quadratic(self):
        param = nn.Parameter(np.array([5.0]))
        opt = nn.SGD([param], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            loss = (Tensor(1.0) * param * param).sum()
            loss.backward()
            opt.step()
        assert abs(param.data[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            param = nn.Parameter(np.array([5.0]))
            opt = nn.SGD([param], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                (param * param).sum().backward()
                opt.step()
            return abs(param.data[0])

        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        param = nn.Parameter(np.array([3.0, -4.0]))
        opt = nn.Adam([param], lr=0.2)
        for _ in range(250):
            opt.zero_grad()
            (param * param).sum().backward()
            opt.step()
        assert np.abs(param.data).max() < 2e-2

    def test_weight_decay_shrinks(self):
        param = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (param * Tensor(0.0)).sum().backward()
        opt.step()
        assert param.data[0] == pytest.approx(0.9)


class TestEndToEndTraining:
    def test_small_cnn_learns_synthetic_mnist(self):
        """A tiny CNN must beat random accuracy by a wide margin."""
        from repro.nn import init

        init.seed_init(0)
        data = mnist_like(num_samples=256, seed=0)
        train, test = data.split(0.75)
        model = nn.Sequential(
            nn.Conv2d(1, 8, 5, stride=2, padding=2),
            nn.ReLU(),
            nn.Conv2d(8, 16, 3, stride=2, padding=1),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(16 * 7 * 7, 10),
        )
        opt = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        loader = DataLoader(train, batch_size=32, seed=0)
        for _ in range(6):
            for images, labels in loader:
                opt.zero_grad()
                loss = F.cross_entropy(model(Tensor(images)), labels)
                loss.backward()
                opt.step()
        model.eval()
        with no_grad():
            logits = model(Tensor(test.images)).data
        accuracy = (logits.argmax(axis=1) == test.labels).mean()
        assert accuracy > 0.6, f"accuracy {accuracy:.2f} too low"
