"""Tests for the negacyclic NTT against schoolbook references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import NttContext, negacyclic_convolve_reference
from repro.utils.primes import find_ntt_primes


@pytest.fixture(scope="module")
def ctx():
    n = 128
    q = find_ntt_primes(28, 1, n)[0]
    return NttContext(q, n)


class TestNttContext:
    def test_roundtrip(self, ctx):
        rng = np.random.default_rng(0)
        a = rng.integers(0, ctx.q, ctx.n)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a % ctx.q)

    def test_forward_of_constant(self, ctx):
        """The constant polynomial evaluates to itself everywhere."""
        a = np.zeros(ctx.n, dtype=np.int64)
        a[0] = 7
        assert np.all(ctx.forward(a) == 7)

    def test_multiply_matches_schoolbook(self, ctx):
        rng = np.random.default_rng(1)
        a = rng.integers(0, ctx.q, ctx.n)
        b = rng.integers(0, ctx.q, ctx.n)
        assert np.array_equal(
            ctx.multiply(a, b), negacyclic_convolve_reference(a, b, ctx.q)
        )

    def test_x_to_the_n_is_minus_one(self, ctx):
        """X^(N/2) * X^(N/2) = X^N = -1 in the negacyclic ring."""
        half = np.zeros(ctx.n, dtype=np.int64)
        half[ctx.n // 2] = 1
        prod = ctx.multiply(half, half)
        expected = np.zeros(ctx.n, dtype=np.int64)
        expected[0] = ctx.q - 1
        assert np.array_equal(prod, expected)

    def test_batched_transform(self, ctx):
        rng = np.random.default_rng(2)
        batch = rng.integers(0, ctx.q, (3, ctx.n))
        fwd = ctx.forward(batch)
        for i in range(3):
            assert np.array_equal(fwd[i], ctx.forward(batch[i]))

    def test_linearity(self, ctx):
        rng = np.random.default_rng(3)
        a = rng.integers(0, ctx.q, ctx.n)
        b = rng.integers(0, ctx.q, ctx.n)
        lhs = ctx.forward((a + b) % ctx.q)
        rhs = (ctx.forward(a) + ctx.forward(b)) % ctx.q
        assert np.array_equal(lhs, rhs)

    def test_rejects_large_prime(self):
        with pytest.raises(ValueError):
            NttContext((1 << 62) + 1, 64)

    def test_rejects_bad_congruence(self):
        # 97 = 1 mod 32 but not mod 256
        assert (97 - 1) % 32 == 0
        with pytest.raises(ValueError):
            NttContext(97, 128)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**28 - 1), st.integers(min_value=0, max_value=63))
    def test_monomial_products(self, coeff, degree):
        """(c * X^d)^2 = c^2 X^2d with sign wrap, for random monomials."""
        n = 64
        q = find_ntt_primes(28, 1, n)[0]
        context = _MONOMIAL_CTX.setdefault((q, n), NttContext(q, n))
        a = np.zeros(n, dtype=np.int64)
        a[degree] = coeff % q
        prod = context.multiply(a, a)
        expected = np.zeros(n, dtype=np.int64)
        target = 2 * degree
        value = (coeff * coeff) % q
        if target < n:
            expected[target] = value
        else:
            expected[target - n] = (-value) % q
        assert np.array_equal(prod, expected)


_MONOMIAL_CTX = {}
