"""Unit tests for :mod:`repro.obs` — tracing, metrics, noise telemetry.

The contracts the observability PR rests on:

- **span trees** nest via the explicit stack, attribute ledger op-count
  deltas exactly, and sample roots systematically (children follow
  their root);
- **disabled tracing is a no-op object** — the NullTracer records
  nothing and hands out the shared NULL_SPAN;
- **exports** — JSONL, Chrome ``trace_event`` JSON (Perfetto), and the
  Prometheus text exposition format all render from the same state;
- **summarizer unification** — ``OpLedger.snapshot`` /
  ``LatencyHistogram.snapshot`` and the typed stats schema consume one
  shared summarizer, so they can never disagree;
- **LatencyHistogram edges** — empty percentiles, single-sample
  p50 == p99, disjoint-bucket merges;
- **NoiseMonitor** — boundary counts, min level, scale drift, and
  span attachment are observe-only.
"""

import json
from fractions import Fraction

import pytest

from repro.backend.ledger import LatencyHistogram, OpLedger
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    NoiseMonitor,
    Span,
    Tracer,
    chrome_trace,
    get_tracer,
    merge_histogram_summaries,
    summarize_histogram,
    summarize_ledger,
    use_tracer,
    write_chrome_trace,
)
from repro.serve.stats import HistogramStats, NoiseStats


class TestSpanTree:
    def test_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("root", category="serve", mode="test") as root:
            with tracer.span("child-a") as a:
                a.set(layer="conv1")
            with tracer.span("child-b"):
                pass
        assert tracer.roots == [root]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.attrs["mode"] == "test"
        assert root.children[0].attrs["layer"] == "conv1"
        assert root.start <= root.children[0].start
        assert root.end >= root.children[-1].end

    def test_ledger_delta_attribution(self):
        ledger = OpLedger()
        ledger.charge("hrot", 1.0, count=2)  # pre-existing charges
        tracer = Tracer()
        with tracer.span("outer", ledger=ledger):
            ledger.charge("pmult", 0.5, count=5)
            with tracer.span("inner", ledger=ledger):
                ledger.charge("hrot", 0.25, count=3)
        outer, = tracer.roots
        inner, = outer.children
        # deltas, not totals: the pre-span hrot=2 is not attributed
        assert outer.ops == {"pmult": 5, "hrot": 3}
        assert inner.ops == {"hrot": 3}
        assert outer.seconds == pytest.approx(0.75)
        assert inner.seconds == pytest.approx(0.25)
        # exact reconciliation against the ledger totals
        assert outer.ops["pmult"] == ledger.counts["pmult"]
        assert outer.ops["hrot"] + 2 == ledger.counts["hrot"]

    def test_systematic_root_sampling(self):
        tracer = Tracer(sample_rate=0.5)
        kept = 0
        for _ in range(10):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        kept = len(tracer.roots)
        assert kept == 5  # systematic: exactly every other root
        assert all(len(r.children) == 1 for r in tracer.roots)

    def test_unsampled_root_skips_subtree(self):
        tracer = Tracer(sample_rate=0.5)
        spans = []
        for _ in range(4):
            with tracer.span("root") as r:
                with tracer.span("child") as c:
                    spans.append((r, c))
        dropped = [pair for pair in spans if pair[0] is NULL_SPAN]
        assert len(dropped) == 2
        # the whole subtree of an unsampled root is the null span
        assert all(c is NULL_SPAN for _, c in dropped)

    def test_record_span_lands_under_current(self):
        tracer = Tracer()
        with tracer.span("batch"):
            tracer.record_span("request", 1.0, 2.0, ticket=7)
        batch, = tracer.roots
        assert [c.name for c in batch.children] == ["request"]
        assert batch.children[0].attrs["ticket"] == 7
        assert batch.children[0].duration == pytest.approx(1.0)

    def test_record_span_respects_root_sampling(self):
        tracer = Tracer(sample_rate=0.5)
        recorded = [
            tracer.record_span("r", 0.0, 1.0) is not None for _ in range(10)
        ]
        assert sum(recorded) == 5

    def test_max_roots_bounds_memory(self):
        tracer = Tracer(max_roots=2)
        for _ in range(5):
            with tracer.span("root"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped_roots == 3

    def test_drain_semantics(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        first = tracer.drain()
        assert [p["name"] for p in first] == ["a"]
        assert tracer.drain() == []  # never duplicates
        with tracer.span("b"):
            pass
        assert [p["name"] for p in tracer.drain()] == ["b"]

    def test_span_payload_round_trip(self):
        ledger = OpLedger()
        tracer = Tracer()
        with tracer.span("root", category="serve", ledger=ledger, k=1):
            ledger.charge("hmult", 0.5)
            with tracer.span("child"):
                pass
        payload = tracer.roots[0].to_payload()
        restored = Span.from_payload(json.loads(json.dumps(payload)))
        assert restored.name == "root"
        assert restored.ops == {"hmult": 1}
        assert restored.attrs == {"k": 1}
        assert [c.name for c in restored.children] == ["child"]


class TestNullTracer:
    def test_everything_is_a_noop(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x") is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            assert span is NULL_SPAN
            assert span.set(a=1) is NULL_SPAN
        assert NULL_TRACER.record_span("x", 0.0, 1.0) is None
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.to_jsonl() == ""

    def test_use_tracer_scopes_and_restores(self):
        # The CI tracing-on leg installs an ambient tracer, so pin the
        # baseline instead of assuming the process default.
        ambient = get_tracer()
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with use_tracer(None):
                assert get_tracer() is NULL_TRACER
            assert get_tracer() is tracer
        assert get_tracer() is ambient

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=0.0)
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestExports:
    def _tracer_with_tree(self):
        tracer = Tracer()
        ledger = OpLedger()
        with tracer.span("serve.batch", category="serve", ledger=ledger):
            ledger.charge("hrot", 1.0, count=4)
            with tracer.span("execute", category="serve"):
                pass
        return tracer

    def test_jsonl_flattens_depth_first(self):
        tracer = self._tracer_with_tree()
        lines = [json.loads(l) for l in tracer.to_jsonl().splitlines()]
        assert [(r["name"], r["depth"], r["parent"]) for r in lines] == [
            ("serve.batch", 0, None),
            ("execute", 1, "serve.batch"),
        ]
        assert lines[0]["ops"] == {"hrot": 4}

    def test_chrome_trace_tracks_and_events(self):
        tracer = self._tracer_with_tree()
        doc = chrome_trace(
            [
                {
                    "tid": 3,
                    "name": "worker-3",
                    "spans": tracer.drain(),
                    "clock_offset": tracer.clock_offset,
                }
            ]
        )
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == [
            "process_name", "thread_name", "serve.batch", "execute",
        ]
        batch = doc["traceEvents"][2]
        assert batch["ph"] == "X"
        assert batch["tid"] == 3
        assert batch["dur"] >= 0
        assert batch["args"]["ops"] == {"hrot": 4}
        thread = doc["traceEvents"][1]
        assert thread["args"]["name"] == "worker-3"

    def test_write_chrome_trace_is_json_loadable(self, tmp_path):
        tracer = self._tracer_with_tree()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(
            path, [{"tid": 0, "name": "w", "spans": tracer.drain()}]
        )
        doc = json.load(open(path))
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["name"] == "serve.batch" for e in doc["traceEvents"])


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", 2, worker="0")
        reg.counter("repro_x_total", 3, worker="0")
        reg.counter("repro_x_total", 1, worker="1")
        reg.gauge("repro_depth", 4, worker="0")
        reg.observe("repro_lat_seconds", 0.01, worker="0")
        assert reg.counter_value("repro_x_total", worker="0") == 5
        assert reg.counter_value("repro_x_total", worker="1") == 1
        assert reg.gauge_value("repro_depth", worker="0") == 4
        assert reg.histogram_value("repro_lat_seconds", worker="0").count == 1

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("c_total", 1, a="1", b="2")
        reg.counter("c_total", 1, b="2", a="1")
        assert reg.counter_value("c_total", b="2", a="1") == 2

    def test_counters_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("c_total", -1)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("metric", 1)
        with pytest.raises(ValueError, match="already declared"):
            reg.gauge("metric", 1)

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_req_total", 3, help="Requests.", worker="0")
        reg.observe("repro_lat_seconds", 2e-4)
        reg.observe("repro_lat_seconds", 9e-4)
        text = reg.to_prometheus_text()
        assert "# HELP repro_req_total Requests." in text
        assert "# TYPE repro_req_total counter" in text
        assert 'repro_req_total{worker="0"} 3' in text
        assert "# TYPE repro_lat_seconds histogram" in text
        # cumulative le buckets at base*2^(i+1), then +Inf / _sum / _count
        assert 'repro_lat_seconds_bucket{le="0.0004"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
        assert "repro_lat_seconds_sum 0.0011" in text

    def test_payload_round_trip_and_merge(self):
        a = MetricsRegistry()
        a.counter("c_total", 2, worker="0")
        a.gauge("depth", 3, worker="0")
        a.observe("lat_seconds", 0.01, worker="0")
        b = MetricsRegistry()
        b.merge_payload(a.to_payload())
        b.merge_payload(a.to_payload())
        assert b.counter_value("c_total", worker="0") == 4
        assert b.gauge_value("depth", worker="0") == 6  # gauges sum
        assert b.histogram_value("lat_seconds", worker="0").count == 2

    def test_record_histogram_folds_existing(self):
        hist = LatencyHistogram()
        hist.observe(0.01)
        hist.observe(0.02)
        reg = MetricsRegistry()
        reg.record_histogram("lat_seconds", hist, phase="linear")
        reg.record_histogram("lat_seconds", hist, phase="linear")
        assert reg.histogram_value("lat_seconds", phase="linear").count == 4


class TestSharedSummarizer:
    def test_ledger_snapshot_delegates(self):
        ledger = OpLedger()
        ledger.charge("hrot", 1.5, count=2)
        ledger.charge("hrot_hoisted", 0.5, count=3)
        assert ledger.snapshot() == summarize_ledger(ledger)
        snap = ledger.snapshot()
        assert snap["rotations"] == 5
        assert snap["seconds"] == pytest.approx(2.0)
        assert "kernel_backend" in snap

    def test_histogram_snapshot_delegates(self):
        hist = LatencyHistogram()
        hist.observe(0.003)
        assert hist.snapshot() == summarize_histogram(hist)

    def test_stats_merge_uses_shared_arithmetic(self):
        a = HistogramStats(count=4, mean_seconds=1.0, p50_seconds=0.5,
                           p99_seconds=2.0)
        b = HistogramStats(count=6, mean_seconds=2.0, p50_seconds=1.5,
                           p99_seconds=1.0)
        merged = a.merged_with(b)
        expected = merge_histogram_summaries(a.to_payload(), b.to_payload())
        assert merged.to_payload() == expected
        assert merged.count == 10
        assert merged.mean_seconds == pytest.approx(1.6)
        assert merged.p50_seconds == 1.5
        assert merged.p99_seconds == 2.0

    def test_merge_empty_summaries(self):
        empty = {"count": 0, "mean_seconds": 0.0, "p50_seconds": 0.0,
                 "p99_seconds": 0.0}
        assert merge_histogram_summaries(empty, empty)["mean_seconds"] == 0.0


class TestLatencyHistogramEdges:
    def test_empty_percentiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0
        snap = hist.snapshot()
        assert snap == {"count": 0, "mean_seconds": 0.0,
                        "p50_seconds": 0.0, "p99_seconds": 0.0}

    def test_single_sample_p50_equals_p99(self):
        hist = LatencyHistogram()
        hist.observe(0.0123)
        assert hist.quantile(0.5) == hist.quantile(0.99)
        assert hist.quantile(0.5) >= 0.0123  # bucket upper edge
        assert hist.mean == pytest.approx(0.0123)

    def test_merge_disjoint_buckets(self):
        fast = LatencyHistogram()
        for _ in range(10):
            fast.observe(2e-4)  # low bucket
        slow = LatencyHistogram()
        for _ in range(10):
            slow.observe(0.5)  # high bucket
        merged = LatencyHistogram()
        merged.merge(fast)
        merged.merge(slow)
        assert merged.count == 20
        assert merged.total == pytest.approx(fast.total + slow.total)
        # p50 lands in the fast bucket, p99 in the slow bucket
        assert merged.quantile(0.5) == fast.quantile(0.5)
        assert merged.quantile(0.99) == slow.quantile(0.99)
        assert merged.quantile(0.5) < merged.quantile(0.99)

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            LatencyHistogram(num_buckets=8).merge(LatencyHistogram())


class TestNoiseMonitor:
    def test_counts_min_level_and_drift(self):
        monitor = NoiseMonitor(delta_scale=Fraction(1 << 24))
        monitor.record("rescale", 5, 4, scale_after=Fraction(1 << 24))
        monitor.record("rescale", 4, 3, scale_after=Fraction(3 << 23))
        monitor.record("mod_down", 3, 2)
        monitor.record("bootstrap", 0, 6)
        stats = monitor.stats()
        assert stats["rescales"] == 2
        assert stats["mod_downs"] == 1
        assert stats["bootstraps"] == 1
        assert stats["min_level"] == 2
        # 3<<23 / 1<<24 = 1.5 -> |log2 1.5|
        assert stats["max_scale_drift_log2"] == pytest.approx(0.584962, abs=1e-5)

    def test_event_window_is_bounded(self):
        monitor = NoiseMonitor(keep_events=2)
        for level in range(5, 0, -1):
            monitor.record("rescale", level, level - 1)
        assert len(monitor.events) == 2
        assert monitor.events[-1][2] == 0  # newest kept

    def test_merge(self):
        a = NoiseMonitor()
        a.record("rescale", 3, 2)
        b = NoiseMonitor()
        b.record("bootstrap", 0, 6)
        a.merge(b)
        assert a.rescales == 1 and a.bootstraps == 1
        assert a.min_level == 2

    def test_events_attach_to_active_span(self):
        monitor = NoiseMonitor()
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("linear/conv1"):
                monitor.record("rescale", 4, 3)
        span, = tracer.roots
        assert span.noise == [("rescale", 4, 3, 0.0)]

    def test_noise_stats_schema_round_trip(self):
        monitor = NoiseMonitor()
        monitor.record("rescale", 4, 3)
        stats = NoiseStats.from_monitor(monitor)
        restored = NoiseStats.from_payload(
            json.loads(json.dumps(stats.to_payload()))
        )
        assert restored == stats
        # merged_with: counts sum, min of min_levels, max drift
        other = NoiseStats(rescales=1, mod_downs=2, bootstraps=0,
                           min_level=1, max_scale_drift_log2=0.5)
        merged = stats.merged_with(other)
        assert merged.rescales == 2
        assert merged.min_level == 1
        assert merged.max_scale_drift_log2 == 0.5
        assert NoiseStats().merged_with(NoiseStats()).min_level is None
