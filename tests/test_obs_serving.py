"""Integration tests: observability across compile -> serve -> bootstrap.

The acceptance gates of the observability PR:

- **trace coverage** — a pool-served request produces a Chrome-trace
  span tree whose nested children account for >= 95% of the batch's
  wall-clock;
- **exact op reconciliation** — per-span op counts are ledger deltas,
  so they sum *exactly* to the worker's ``OpLedger`` totals (no
  sampling noise, no double counting);
- **observe-only tracing** — pool outputs are bit-identical with
  tracing on and off, inline and fork mode;
- **metrics endpoint** — ``Server.metrics()`` aggregates worker
  registries (over the pipe protocol in fork mode) plus dispatcher
  admission counters, and renders Prometheus text;
- **fork-mode flush** — telemetry recorded by the last batches before
  ``drain()``/``close()`` survives the child (the satellite-2
  regression);
- **schema v2** — ``ServerStats`` round-trips with the noise block and
  rejects v1 payloads loudly;
- **compile/bootstrap spans** — the compiler and the real bootstrap
  pipeline produce their own span trees.
"""

import json

import numpy as np
import pytest

from repro import serve
from repro.ckks.params import bootstrap_parameters, toy_parameters
from repro.models import SecureMlp
from repro.nn import init
from repro.obs import Tracer, use_tracer
from repro.orion import OrionNetwork
from repro.serve import ServerConfig, ServerStats, StatsSchemaError


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    init.seed_init(0)
    onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    rng = np.random.default_rng(0)
    onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
    params = toy_parameters(
        ring_degree=1024, max_level=6, boot_levels=1, scale_bits=24
    )
    path = str(tmp_path_factory.mktemp("artifacts") / "mlp.npz")
    onet.export(path, params)
    return path


def _images(n, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(n)]


def _config(**overrides):
    base = dict(workers=2, batch_window_seconds=0.0, max_queue_depth=8)
    base.update(overrides)
    return ServerConfig(**base)


def _serve_all(server, images):
    outputs = {}
    for i, image in enumerate(images):
        server.submit(image, client_id=f"client-{i}")
    for result in server.drain():
        outputs[result.client_id] = result.output
    return outputs


def _walk(span):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


@pytest.fixture(scope="module")
def traced_run(artifact_path):
    """One shared traced pool run: outputs, tracks, stats, and the
    per-worker cumulative ledgers (the expensive part)."""
    server = serve.open(artifact_path, _config(tracing=True))
    try:
        outputs = _serve_all(server, _images(4))
        tracks = server.trace()
        stats = server.stats()
        metrics_text = server.metrics_text()
        ledgers = {
            worker.worker_id: {
                artifact_id: dict(srv.ledger.counts)
                for artifact_id, srv in worker.servers.items()
            }
            for worker in server._dispatcher.pool.workers
        }
    finally:
        server.close()
    return outputs, tracks, stats, metrics_text, ledgers


class TestTraceTree:
    def test_every_batch_has_the_span_pipeline(self, traced_run):
        _, tracks, stats, _, _ = traced_run
        batches = [
            root
            for track in tracks
            for root in track["spans"]
            if root["name"] == "serve.batch"
        ]
        assert len(batches) == sum(w.batches_run for w in stats.workers)
        # every request gets its own enqueue->complete root span, on the
        # same track as the batch that served it
        requests = [
            root
            for track in tracks
            for root in track["spans"]
            if root["name"] == "serve.request"
        ]
        assert len(requests) == sum(w.requests_served for w in stats.workers)
        for batch in batches:
            names = [c["name"] for c in batch["children"]]
            assert names == ["encrypt", "execute", "decrypt"]
            execute = batch["children"][1]
            # per-instruction spans carry level/scale telemetry
            layer_spans = execute.get("children", ())
            assert layer_spans, "execute span has no per-layer children"
            assert any(
                c["name"].startswith("linear/") for c in layer_spans
            )
            for child in layer_spans:
                if "level_out" in child["attrs"]:
                    assert child["attrs"]["level_out"] >= 0

    def test_nested_spans_cover_95pct_of_wallclock(self, traced_run):
        _, tracks, _, _, _ = traced_run
        checked = 0
        for track in tracks:
            for root in track["spans"]:
                if root["name"] != "serve.batch":
                    continue
                wall = root["end"] - root["start"]
                covered = sum(
                    c["end"] - c["start"]
                    for c in root["children"]
                    if c["name"] in ("encrypt", "execute", "decrypt")
                )
                assert covered >= 0.95 * wall, (
                    f"span tree covers {covered / wall:.1%} of the batch"
                )
                checked += 1
        assert checked > 0

    def test_span_ops_reconcile_exactly_with_ledger(self, traced_run):
        _, tracks, _, _, ledgers = traced_run
        for track in tracks:
            totals = {}
            for root in track["spans"]:
                if root["name"] != "serve.batch":
                    continue
                for op, count in root.get("ops", {}).items():
                    totals[op] = totals.get(op, 0) + count
            worker_ledger = {}
            for counts in ledgers[track["tid"]].values():
                for op, count in counts.items():
                    worker_ledger[op] = worker_ledger.get(op, 0) + count
            # exact equality, not approximate: span ops are ledger deltas
            assert totals == {op: c for op, c in worker_ledger.items() if c}

    def test_execute_children_sum_to_execute_ops(self, traced_run):
        _, tracks, _, _, _ = traced_run
        for track in tracks:
            for root in track["spans"]:
                if root["name"] != "serve.batch":
                    continue
                execute = root["children"][1]
                child_ops = {}
                for child in execute.get("children", ()):
                    for op, count in child.get("ops", {}).items():
                        child_ops[op] = child_ops.get(op, 0) + count
                assert child_ops == execute.get("ops", {})

    def test_chrome_export_loads(self, traced_run, tmp_path):
        _, tracks, _, _, _ = traced_run
        from repro.obs import chrome_trace

        doc = chrome_trace(tracks)
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        }
        # one Perfetto lane per pool shard
        assert thread_names == {0: "worker-0", 1: "worker-1"}
        json.dumps(doc)  # JSON-serializable end to end


class TestBitExactness:
    def test_outputs_identical_tracing_on_off(self, artifact_path):
        images = _images(4)
        with serve.open(artifact_path, _config()) as plain:
            base = _serve_all(plain, images)
        with serve.open(artifact_path, _config(tracing=True)) as traced:
            observed = _serve_all(traced, images)
        assert base.keys() == observed.keys()
        for client, output in base.items():
            assert np.array_equal(output, observed[client])

    def test_sampled_tracing_is_also_observe_only(self, artifact_path):
        images = _images(4)
        with serve.open(artifact_path, _config()) as plain:
            base = _serve_all(plain, images)
        config = _config(tracing=True, trace_sample_rate=0.5)
        with serve.open(artifact_path, config) as sampled:
            observed = _serve_all(sampled, images)
        for client, output in base.items():
            assert np.array_equal(output, observed[client])


class TestMetricsEndpoint:
    def test_inline_metrics_aggregate(self, traced_run):
        _, _, stats, text, _ = traced_run
        total = sum(w.requests_served for w in stats.workers)
        assert total == 4
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_admission_requests_total{outcome="admitted"} 4' in text
        assert "repro_requests_completed_total 4" in text
        assert "repro_in_flight_requests 0" in text
        # noise telemetry rides the same endpoint
        assert 'repro_noise_boundary_total' in text
        # tracing pools count kernel dispatches
        assert "repro_kernel_dispatch_total" in text

    def test_metrics_without_tracing(self, artifact_path):
        with serve.open(artifact_path, _config()) as server:
            _serve_all(server, _images(2))
            registry = server.metrics()
            total = sum(
                registry.counter_value(
                    "repro_serve_requests_total", worker=str(w), artifact="mlp"
                )
                for w in range(2)
            )
            assert total == 2


class TestForkModeTelemetry:
    def test_metrics_and_trace_over_the_pipe(self, artifact_path):
        config = _config(mode="process", tracing=True)
        server = serve.open(artifact_path, config)
        try:
            outputs = _serve_all(server, _images(4))
            assert len(outputs) == 4
            registry = server.metrics()
            total = sum(
                registry.counter_value(
                    "repro_serve_requests_total", worker=str(w), artifact="mlp"
                )
                for w in range(2)
            )
            assert total == 4
            tracks = server.trace()
            batches = [
                root
                for track in tracks
                for root in track["spans"]
                if root["name"] == "serve.batch"
            ]
            assert batches, "no trace spans crossed the pipe"
            for track in tracks:
                assert track["clock_offset"] > 0  # child epoch alignment
        finally:
            server.close()

    def test_drain_flushes_last_step_telemetry(self, artifact_path):
        """Satellite regression: metrics/trace recorded by drain-time
        batches must survive the fork — before the flush they only
        existed in the child."""
        config = _config(mode="process", tracing=True)
        server = serve.open(artifact_path, config)
        try:
            for i, image in enumerate(_images(4)):
                server.submit(image, client_id=f"client-{i}")
            # no step() in between: every batch runs inside drain()
            results = server.drain()
            assert len(results) == 4
        finally:
            server.close()
        # the forks are gone; everything must come from the flushed caches
        stats = server.stats()
        assert sum(w.requests_served for w in stats.workers) == 4
        assert sum(w.noise.rescales for w in stats.workers) > 0
        registry = server.metrics()
        total = sum(
            registry.counter_value(
                "repro_serve_requests_total", worker=str(w), artifact="mlp"
            )
            for w in range(2)
        )
        assert total == 4
        spans = [
            root for track in server.trace() for root in track["spans"]
        ]
        assert any(root["name"] == "serve.batch" for root in spans)

    def test_fork_stats_match_inline(self, artifact_path):
        images = _images(4)
        with serve.open(artifact_path, _config()) as inline:
            _serve_all(inline, images)
            inline_stats = inline.stats()
        fork = serve.open(artifact_path, _config(mode="process"))
        try:
            _serve_all(fork, images)
            fork_stats = fork.stats()
        finally:
            fork.close()
        for a, b in zip(inline_stats.workers, fork_stats.workers):
            assert a.requests_served == b.requests_served
            assert a.rotations == b.rotations
            assert a.noise == b.noise


class TestSchemaV2:
    def test_round_trip_with_noise(self, traced_run):
        _, _, stats, _, _ = traced_run
        restored = ServerStats.from_json(stats.to_json())
        assert restored == stats
        worker = restored.workers[0]
        assert worker.noise.rescales > 0
        assert worker.noise.min_level is not None

    def test_v1_payload_rejected_loudly(self, traced_run):
        _, _, stats, _, _ = traced_run
        payload = stats.to_payload()
        payload["schema_version"] = 1
        with pytest.raises(StatsSchemaError, match="version 1"):
            ServerStats.from_payload(payload)
        with pytest.raises(StatsSchemaError, match="noise"):
            ServerStats.from_payload(payload)


class TestCompileSpans:
    def test_compile_produces_span_tree(self):
        init.seed_init(0)
        onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        rng = np.random.default_rng(0)
        onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
        params = toy_parameters(
            ring_degree=1024, max_level=6, boot_levels=1, scale_bits=24
        )
        tracer = Tracer()
        with use_tracer(tracer):
            compiled = onet.compile(params)
        compile_spans = [r for r in tracer.roots if r.name == "compile"]
        assert len(compile_spans) == 1
        span = compile_spans[0]
        child_names = [c.name for c in span.children]
        assert "placement" in child_names
        assert span.attrs["rotations"] == compiled.total_rotations
        assert span.attrs["bootstraps"] == compiled.num_bootstraps
        assert span.attrs["depth"] == compiled.multiplicative_depth


class TestBootstrapSpans:
    def test_real_bootstrap_span_pipeline(self):
        from repro.backend.toy import ToyBackend

        backend = ToyBackend(bootstrap_parameters(), seed=7, real_bootstrap=True)
        message = np.random.default_rng(3).uniform(
            -0.9, 0.9, backend.params.slot_count
        )
        ct = backend.encode_encrypt(message, level=0)
        tracer = Tracer()
        with use_tracer(tracer):
            out = backend.bootstrap(ct)
        boot_spans = [r for r in tracer.roots if r.name == "bootstrap"]
        assert len(boot_spans) == 1
        span = boot_spans[0]
        assert [c.name for c in span.children] == [
            "mod_raise", "coeff_to_slot", "eval_mod", "slot_to_coeff",
        ]
        assert span.attrs["level_in"] == 0
        assert span.attrs["level_out"] == out.level
        # ledger-bound children attribute their op deltas
        assert any(c.ops for c in span.children)
