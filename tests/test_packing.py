"""Tests for single-shot multiplexed packing (paper Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.packing import (
    MultiplexedLayout,
    VectorLayout,
    analyze_conv_packing,
    build_conv_packing,
    build_linear_packing,
    extract_generalized_diagonals,
    lee_conv_rotations,
    matvec_diagonal_cleartext,
    plan_bsgs,
)
from repro.core.packing.analysis import analyze_toeplitz_strided_diagonals
from repro.core.packing.bsgs import plan_bsgs_square_matrix

N = 1024
RNG = np.random.default_rng(7)


def _check_conv(ci, co, h, w, k, stride=1, pad=0, gap=1, groups=1, dil=1, bias=True):
    lay = MultiplexedLayout(ci, h, w, gap, N)
    x = RNG.normal(size=(ci, h, w))
    weight = RNG.normal(size=(co, ci // groups, k, k))
    b = RNG.normal(size=co) if bias else None
    packed = build_conv_packing(
        weight, b, lay, stride=(stride, stride), padding=(pad, pad),
        dilation=(dil, dil), groups=groups,
    )
    got = packed.out_layout.unpack(packed.execute_cleartext(lay.pack(x)))
    ref = F.conv2d(
        Tensor(x[None]), Tensor(weight), Tensor(b) if bias else None,
        stride=(stride, stride), padding=(pad, pad), dilation=(dil, dil),
        groups=groups,
    ).data[0]
    assert np.abs(got - ref).max() < 1e-9
    return packed


class TestLayouts:
    def test_gap1_is_raster_scan(self):
        lay = MultiplexedLayout(2, 4, 4, 1, N)
        assert lay.slot(1, 2, 3) == 1 * 16 + 2 * 4 + 3

    def test_pack_unpack_roundtrip(self):
        lay = MultiplexedLayout(5, 4, 4, 2, N)
        t = RNG.normal(size=(5, 4, 4))
        assert np.allclose(lay.unpack(lay.pack(t)), t)

    def test_gap_packs_channels_into_subblocks(self):
        lay = MultiplexedLayout(4, 2, 2, 2, N)
        # channels 0..3 of pixel (0,0) occupy the top-left 2x2 sub-block
        slots = [lay.slot(c, 0, 0) for c in range(4)]
        assert slots == [0, 1, 4, 5]  # grid width = 4

    def test_multi_ciphertext_split(self):
        lay = MultiplexedLayout(8, 16, 16, 1, N)
        assert lay.num_ciphertexts == 2

    def test_slot_of_logical_matches_slot(self):
        lay = MultiplexedLayout(3, 4, 5, 1, N)
        logical = 1 * 20 + 2 * 5 + 3
        assert lay.slot_of_logical(logical) == lay.slot(1, 2, 3)

    def test_vector_layout(self):
        lay = VectorLayout(10, N)
        vecs = lay.pack(np.arange(10.0))
        assert len(vecs) == 1 and vecs[0][9] == 9
        assert np.array_equal(lay.unpack(vecs), np.arange(10.0))


class TestDiagonalMethod:
    def test_matches_dense_matvec(self):
        m = RNG.normal(size=(16, 16))
        v = RNG.normal(size=16)
        assert np.allclose(matvec_diagonal_cleartext(m, v), m @ v)

    def test_diagonal_extraction_sparsity(self):
        m = np.eye(8)
        diags = extract_generalized_diagonals(m)
        assert list(diags) == [0]

    def test_bsgs_square_counts(self):
        plain, bsgs = plan_bsgs_square_matrix(64)
        assert plain == 63
        assert bsgs == 14  # 8 + 8 - 2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=40))
    def test_bsgs_plan_covers_offsets(self, offsets):
        plan = plan_bsgs(offsets, N)
        for off in offsets:
            giant, baby = plan.split(off % N)
            assert giant + baby == off % N
            assert baby in plan.babies
            assert giant in plan.giants

    def test_bsgs_beats_plain_for_dense_sets(self):
        offsets = list(range(256))
        plan = plan_bsgs(offsets, N)
        assert plan.num_rotations < 255


class TestConvPacking:
    def test_siso_same_conv(self):
        packed = _check_conv(1, 1, 8, 8, 3, stride=1, pad=1)
        # 9 taps -> 9 diagonals, BSGS splits them.
        assert packed.pmult_count() == 9
        assert packed.rotation_count() <= 8

    def test_mimo_conv(self):
        _check_conv(2, 2, 8, 8, 3, stride=1, pad=1)

    def test_strided_conv_single_level(self):
        """The core single-shot claim: strided convs need one matvec."""
        packed = _check_conv(1, 4, 8, 8, 2, stride=2, pad=0)
        assert packed.out_layout.gap == 2

    def test_strided_on_multiplexed_input(self):
        packed = _check_conv(4, 8, 8, 8, 3, stride=2, pad=1, gap=2)
        assert packed.out_layout.gap == 4

    def test_grouped_and_depthwise(self):
        _check_conv(4, 4, 8, 8, 3, pad=1, groups=2)
        _check_conv(4, 4, 8, 8, 3, pad=1, groups=4)

    def test_dilated(self):
        _check_conv(2, 2, 9, 9, 3, pad=2, dil=2)

    def test_multi_ciphertext_blocked(self):
        packed = _check_conv(8, 8, 16, 16, 3, pad=1)
        assert packed.num_in == 2 and packed.num_out == 2

    def test_no_bias(self):
        _check_conv(2, 3, 6, 6, 3, pad=1, bias=False)

    def test_rejects_anisotropic_stride(self):
        lay = MultiplexedLayout(1, 8, 8, 1, N)
        with pytest.raises(ValueError):
            build_conv_packing(np.zeros((1, 1, 2, 2)), None, lay, stride=(2, 1))

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([1, 2]),
        st.sampled_from([0, 1]),
    )
    def test_random_conv_configs(self, ci, co, stride, pad):
        _check_conv(ci, co, 8, 8, 3, stride=stride, pad=pad)


class TestLinearPacking:
    def test_fc_over_multiplexed_layout(self):
        lay = MultiplexedLayout(4, 4, 4, 2, N)
        x = RNG.normal(size=(4, 4, 4))
        m = RNG.normal(size=(7, 64))
        b = RNG.normal(size=7)
        packed = build_linear_packing(m, b, lay)
        got = packed.out_layout.unpack(packed.execute_cleartext(lay.pack(x)))
        assert np.allclose(got, m @ x.ravel() + b)

    def test_hybrid_vs_plain_same_answer(self):
        lay = VectorLayout(128, N)
        m = RNG.normal(size=(8, 128))
        x = RNG.normal(size=128)
        for mode in ("hybrid", "plain"):
            packed = build_linear_packing(m, None, lay, force_mode=mode if mode == "hybrid" else None)
            got = packed.out_layout.unpack(packed.execute_cleartext(lay.pack(x)))
            assert np.allclose(got, m @ x)

    def test_hybrid_reduces_rotations_for_squat_matrices(self):
        lay = VectorLayout(512, N)
        m = RNG.normal(size=(8, 512))
        hybrid = build_linear_packing(m, None, lay, force_mode="hybrid")
        # Plain diagonal method needs ~min(512, n) rotations; hybrid
        # needs ~sqrt(8) + log2(n/8).
        assert hybrid.rotation_count() < 40

    def test_mismatched_width_raises(self):
        lay = VectorLayout(16, N)
        with pytest.raises(ValueError):
            build_linear_packing(np.zeros((4, 32)), None, lay)


class TestAnalysisMode:
    def test_matches_materialized_counts(self):
        """Closed-form analysis must agree with real construction for
        interior-dominated convs."""
        lay = MultiplexedLayout(8, 16, 16, 1, N)
        w = RNG.normal(size=(8, 8, 3, 3))
        packed = build_conv_packing(w, None, lay, padding=(1, 1))
        stats = analyze_conv_packing(w.shape, lay, padding=(1, 1))
        assert stats.pmults == packed.pmult_count()
        assert stats.rotations == packed.rotation_count()
        assert stats.out_layout.gap == packed.out_layout.gap

    def test_strided_toeplitz_diagonal_blowup(self):
        """Paper Figure 5a: naive strided Toeplitz diagonals scale with
        the input size; single-shot multiplexing stays at ~f * c."""
        lay = MultiplexedLayout(1, 16, 16, 1, N)
        naive = analyze_toeplitz_strided_diagonals(lay, (2, 2), 2, c_out=4)
        multiplexed = analyze_conv_packing((4, 1, 2, 2), lay, stride=(2, 2))
        assert naive > 4 * multiplexed.pmults

    def test_scales_to_imagenet_shapes(self):
        lay = MultiplexedLayout(64, 56, 56, 1, 1 << 15)
        stats = analyze_conv_packing((64, 64, 3, 3), lay, padding=(1, 1))
        assert stats.pmults > 0 and stats.rotations > 0
        assert stats.num_in_cts == lay.num_ciphertexts


class TestLeeBaseline:
    def test_lee_counts_grow_with_taps(self):
        lay = MultiplexedLayout(16, 32, 32, 1, 1 << 15)
        small = lee_conv_rotations(lay, (3, 3), 16)
        big = lee_conv_rotations(lay, (5, 5), 16)
        assert big > small

    def test_strided_needs_collect_rotations(self):
        lay = MultiplexedLayout(16, 32, 32, 1, 1 << 15)
        flat = lee_conv_rotations(lay, (3, 3), 16, stride=1)
        strided = lee_conv_rotations(lay, (3, 3), 16, stride=2)
        assert strided > flat

    def test_orion_beats_lee_on_wide_convs(self):
        """The Table 3 direction: Orion's BSGS wins, more so for wider
        channel counts."""
        n = 1 << 15
        lay = MultiplexedLayout(64, 16, 16, 1, n)
        lee = lee_conv_rotations(lay, (3, 3), 64)
        orion = analyze_conv_packing((64, 64, 3, 3), lay, padding=(1, 1)).rotations
        assert orion < lee
