"""Tests for automatic bootstrap placement (paper Section 5, Figure 6)."""

import pytest

from repro.core.placement import (
    JoinSpec,
    LayerSpec,
    PlacementChain,
    PlacementRegion,
    dacapo_style_placement,
    lazy_placement,
    solve_placement,
)

BOOT = 100.0


def flat_cost(level):
    return 1.0 + 0.1 * level


def layer(name, depth=1, cost=flat_cost, boot_units=1):
    return LayerSpec(name, depth, cost, boot_units)


class TestPaperFigure6:
    def test_skipless_network_zero_bootstraps(self):
        """Fig. 6a/6b: 3 FC layers, L_eff = 3 -> no bootstrap needed."""
        chain = PlacementChain([layer(f"fc{i}") for i in (1, 2, 3)])
        result = solve_placement(chain, l_eff=3, boot_cost=BOOT)
        assert result.num_bootstraps == 0
        assert result.entry_level == 3
        levels = [p.exec_level for p in result.policies]
        assert levels == [3, 2, 1]

    def test_residual_network_needs_one(self):
        """Fig. 6c: backbone fc1-fc2-ax^2 with a residual -> >= 1 boot."""
        backbone = PlacementChain([layer("fc1"), layer("fc2"), layer("ax2")])
        region = PlacementRegion(
            backbone, PlacementChain(),
            JoinSpec("add", 0, lambda l: 0.0, boot_units=2),
        )
        chain = PlacementChain([region, layer("fc3")])
        result = solve_placement(chain, l_eff=3, boot_cost=BOOT)
        assert result.num_bootstraps == 1

    def test_run_below_leff_after_boot(self):
        """Fig. 6b note: a layer may execute below L_eff even right
        after a bootstrap when lower levels are cheaper."""
        expensive_at_high_levels = lambda l: 1.0 + 100.0 * l
        chain = PlacementChain(
            [layer(f"l{i}", depth=2, cost=expensive_at_high_levels) for i in range(4)]
        )
        result = solve_placement(chain, l_eff=6, boot_cost=BOOT)
        for policy in result.policies:
            # Never executes above its depth: cost model pushes it down.
            assert policy.exec_level == 2


class TestPlannerProperties:
    def test_infeasible_depth_raises(self):
        chain = PlacementChain([layer("deep", depth=9)])
        with pytest.raises(ValueError):
            solve_placement(chain, l_eff=5, boot_cost=BOOT)

    def test_policy_levels_are_consistent(self):
        """Simulate the policy: levels never go negative; bootstraps
        occur exactly where declared."""
        chain = PlacementChain([layer(f"l{i}", depth=3) for i in range(10)])
        result = solve_placement(chain, l_eff=7, boot_cost=BOOT)
        level = result.entry_level
        for policy in result.policies:
            if policy.bootstrap_before:
                level = 7
            assert policy.exec_level <= level
            level = policy.exec_level - 3
            assert level >= 0

    def test_boot_units_multiply(self):
        chain = PlacementChain(
            [layer("big", depth=4, boot_units=5), layer("big2", depth=4, boot_units=5)]
        )
        result = solve_placement(chain, l_eff=5, boot_cost=1.0)
        assert result.num_bootstraps == 5  # one refresh of 5 ciphertexts

    def test_entry_level_constraint(self):
        chain = PlacementChain([layer("l0", depth=2)])
        result = solve_placement(chain, l_eff=5, boot_cost=BOOT, entry_level=2)
        assert result.entry_level == 2

    def test_total_depth(self):
        backbone = PlacementChain([layer("a", depth=3), layer("b", depth=2)])
        region = PlacementRegion(
            backbone, PlacementChain(), JoinSpec("add", 0, flat_cost, boot_units=2)
        )
        chain = PlacementChain([region, layer("c", depth=4)])
        assert chain.total_depth() == 9

    def test_linear_scaling_with_depth(self):
        """Paper Table 5: placement time grows ~linearly with layers."""
        import time

        def solve_n(n):
            chain = PlacementChain([layer(f"l{i}", depth=2) for i in range(n)])
            start = time.perf_counter()
            solve_placement(chain, l_eff=10, boot_cost=BOOT)
            return time.perf_counter() - start

        t_small = max(solve_n(50), 1e-4)
        t_large = solve_n(400)
        assert t_large < 30 * t_small  # linear-ish, not quadratic


class TestBaselines:
    def _deep_chain(self):
        return PlacementChain([layer(f"l{i}", depth=2) for i in range(30)])

    def test_lazy_feasible(self):
        result = lazy_placement(self._deep_chain(), l_eff=5, boot_cost=BOOT)
        level = 5
        for policy in result.policies:
            if policy.bootstrap_before:
                level = 5
            assert level >= 2
            level -= 2

    def test_planner_never_worse_than_lazy(self):
        chain = self._deep_chain()
        opt = solve_placement(chain, l_eff=5, boot_cost=BOOT)
        lazy = lazy_placement(chain, l_eff=5, boot_cost=BOOT)
        assert opt.modeled_seconds <= lazy.modeled_seconds + 1e-9

    def test_planner_beats_lazy_on_residuals(self):
        """Residual joins punish lazy placement (paper Section 5.1)."""
        blocks = []
        for i in range(6):
            backbone = PlacementChain(
                [layer(f"b{i}a", depth=3), layer(f"b{i}b", depth=3)]
            )
            blocks.append(
                PlacementRegion(
                    backbone, PlacementChain(),
                    JoinSpec(f"add{i}", 0, lambda l: 0.0, boot_units=2),
                )
            )
        chain = PlacementChain(blocks)
        opt = solve_placement(chain, l_eff=7, boot_cost=BOOT)
        lazy = lazy_placement(chain, l_eff=7, boot_cost=BOOT)
        assert opt.num_bootstraps <= lazy.num_bootstraps
        assert opt.modeled_seconds < lazy.modeled_seconds

    def test_dacapo_close_to_planner_but_slower_logic(self):
        chain = self._deep_chain()
        opt = solve_placement(chain, l_eff=5, boot_cost=BOOT)
        dacapo = dacapo_style_placement(chain, l_eff=5, boot_cost=BOOT)
        assert dacapo.modeled_seconds <= 1.2 * opt.modeled_seconds + 1e-9
        assert dacapo.num_bootstraps >= opt.num_bootstraps - 1


class TestBootCountsPinnedUnderCalibratedCosts:
    """Table 5 regression pins: cost-model recalibration (c_inner /
    c_decompose refit against BENCH_ckks_hotpath.json) must not move
    bootstrap counts or entry levels — the fit constrains the total
    keyswitch price precisely so placement economics stay put.
    """

    @pytest.fixture(scope="class")
    def compile_net(self):
        import numpy as np

        from repro.ckks.params import paper_parameters
        from repro.nn import init
        from repro.orion import OrionNetwork

        def compile_net(builder, shape, seed=3):
            init.seed_init(seed)
            onet = OrionNetwork(builder(), shape)
            rng = np.random.default_rng(seed)
            onet.fit([rng.normal(0, 0.5, (8,) + shape)])
            return onet.compile(paper_parameters(), mode="analyze")

        return compile_net

    def test_resnet_boot_counts_unchanged(self, compile_net):
        from repro.models import resnet_cifar, silu_act

        expected = {8: 6, 14: 12, 20: 18}
        for depth, boots in expected.items():
            compiled = compile_net(
                lambda d=depth: resnet_cifar(d, act=silu_act(31), width=4),
                (3, 8, 8),
            )
            assert compiled.num_bootstraps == boots
            assert compiled.placement.entry_level == 9

    def test_mlp_stays_bootstrap_free(self, compile_net):
        from repro.models import SecureMlp

        compiled = compile_net(
            lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8)
        )
        assert compiled.num_bootstraps == 0
        assert compiled.placement.entry_level == 5
