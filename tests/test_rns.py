"""Tests for RNS basis and polynomial arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns import RnsBasis, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64


@pytest.fixture(scope="module")
def basis():
    primes = find_ntt_primes(26, 4, N) + find_ntt_primes(28, 1, N)
    return RnsBasis(primes, N, num_special=1)


class TestRnsBasis:
    def test_modulus_products(self, basis):
        assert basis.modulus(1) == basis.primes[0]
        assert basis.modulus(3) == basis.primes[0] * basis.primes[1] * basis.primes[2]

    def test_special_primes_split(self, basis):
        assert basis.num_data_primes == 4
        assert len(basis.special_primes) == 1
        assert basis.special_modulus() == basis.primes[-1]

    def test_crt_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        primes = basis.primes[:3]
        q = basis.modulus(3)
        assert q // 2 > 1 << 60  # values below stay inside the CRT range
        values = rng.integers(-(1 << 60), 1 << 60, N).astype(object)
        limbs = basis.reduce_bigints(values, primes)
        back = basis.crt_reconstruct(limbs, primes)
        assert np.array_equal(back, values)

    def test_rejects_duplicate_primes(self):
        p = find_ntt_primes(26, 1, N)[0]
        with pytest.raises(ValueError):
            RnsBasis([p, p], N)


class TestRnsPolynomial:
    def _random_poly(self, basis, primes, seed, magnitude=1 << 20):
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(-magnitude, magnitude, N).astype(object)
        return coeffs, RnsPolynomial.from_bigint_coeffs(basis, primes, coeffs)

    def test_bigint_roundtrip(self, basis):
        coeffs, poly = self._random_poly(basis, basis.primes[:3], 0)
        assert np.array_equal(poly.to_bigint_coeffs(), coeffs)

    def test_add_matches_integers(self, basis):
        primes = basis.primes[:3]
        ca, pa = self._random_poly(basis, primes, 1)
        cb, pb = self._random_poly(basis, primes, 2)
        assert np.array_equal((pa + pb).to_bigint_coeffs(), ca + cb)

    def test_sub_and_neg(self, basis):
        primes = basis.primes[:2]
        ca, pa = self._random_poly(basis, primes, 3)
        cb, pb = self._random_poly(basis, primes, 4)
        assert np.array_equal((pa - pb).to_bigint_coeffs(), ca - cb)
        assert np.array_equal((-pa).to_bigint_coeffs(), -ca)

    def test_mul_matches_negacyclic_reference(self, basis):
        primes = basis.primes[:2]
        rng = np.random.default_rng(5)
        ca = rng.integers(0, 100, N).astype(object)
        cb = rng.integers(0, 100, N).astype(object)
        pa = RnsPolynomial.from_bigint_coeffs(basis, primes, ca)
        pb = RnsPolynomial.from_bigint_coeffs(basis, primes, cb)
        got = (pa * pb).to_bigint_coeffs()
        # schoolbook negacyclic product over the integers
        expected = np.zeros(N, dtype=object)
        for i in range(N):
            for j in range(N):
                k = i + j
                term = int(ca[i]) * int(cb[j])
                if k < N:
                    expected[k] += term
                else:
                    expected[k - N] -= term
        q = basis.modulus(2)
        assert np.array_equal(
            np.array([int(x) % q for x in got], dtype=object),
            np.array([int(x) % q for x in expected], dtype=object),
        )

    def test_scalar_mul(self, basis):
        primes = basis.primes[:3]
        ca, pa = self._random_poly(basis, primes, 6, magnitude=1000)
        got = pa.scalar_mul(7).to_bigint_coeffs()
        assert np.array_equal(got, ca * 7)

    def test_automorphism_composition(self, basis):
        """sigma_5 applied slot-count times is the identity."""
        primes = basis.primes[:2]
        _, pa = self._random_poly(basis, primes, 7)
        out = pa
        for _ in range(N // 2):
            out = out.automorphism(5)
        assert np.array_equal(out.to_bigint_coeffs(), pa.to_bigint_coeffs())

    def test_automorphism_preserves_products(self, basis):
        """sigma is a ring homomorphism: sigma(ab) = sigma(a)sigma(b)."""
        primes = basis.primes[:2]
        _, pa = self._random_poly(basis, primes, 8, magnitude=50)
        _, pb = self._random_poly(basis, primes, 9, magnitude=50)
        lhs = (pa * pb).automorphism(5)
        rhs = pa.automorphism(5) * pb.automorphism(5)
        assert np.array_equal(lhs.to_bigint_coeffs(), rhs.to_bigint_coeffs())

    def test_divide_and_round_by_last(self, basis):
        primes = basis.primes[:3]
        last = primes[-1]
        rng = np.random.default_rng(10)
        coeffs = rng.integers(-(1 << 40), 1 << 40, N).astype(object)
        poly = RnsPolynomial.from_bigint_coeffs(basis, primes, coeffs)
        divided = poly.divide_and_round_by_last().to_bigint_coeffs()
        expected = np.array([round_half_away(int(c), last) for c in coeffs], dtype=object)
        assert np.array_equal(divided, expected)

    def test_drop_limbs(self, basis):
        primes = basis.primes[:3]
        _, pa = self._random_poly(basis, primes, 11, magnitude=100)
        dropped = pa.drop_limbs(1)
        assert dropped.primes == primes[:2]
        # Values congruent modulo the smaller modulus.
        q2 = basis.modulus(2)
        a = np.array([int(x) % q2 for x in pa.to_bigint_coeffs()], dtype=object)
        b = np.array([int(x) % q2 for x in dropped.to_bigint_coeffs()], dtype=object)
        assert np.array_equal(a, b)

    def test_extend_primes_exact(self, basis):
        primes = basis.primes[:2]
        _, pa = self._random_poly(basis, primes, 12, magnitude=1000)
        extended = pa.extend_primes(basis.primes[:2] + basis.special_primes)
        assert np.array_equal(extended.to_bigint_coeffs(), pa.to_bigint_coeffs())

    def test_incompatible_operands_raise(self, basis):
        _, pa = self._random_poly(basis, basis.primes[:2], 13)
        _, pb = self._random_poly(basis, basis.primes[:3], 14)
        with pytest.raises(ValueError):
            _ = pa + pb

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=-(1 << 30), max_value=1 << 30))
    def test_constant_polys_multiply_like_ints(self, value):
        primes = find_ntt_primes(26, 2, N)
        basis = _BASIS_CACHE.setdefault(tuple(primes), RnsBasis(primes, N))
        coeffs = np.zeros(N, dtype=object)
        coeffs[0] = value
        poly = RnsPolynomial.from_bigint_coeffs(basis, basis.primes, coeffs)
        sq = (poly * poly).to_bigint_coeffs()
        q = basis.modulus(2)
        expected = (value * value) % q
        if expected > q // 2:
            expected -= q
        assert int(sq[0]) == expected
        assert all(int(c) == 0 for c in sq[1:])


_BASIS_CACHE = {}


def round_half_away(value: int, divisor: int):
    """Python reference for divide-and-round used by rescaling.

    The RNS formula computes (x - [x]_q) / q with a centered lift of
    [x]_q into (-q/2, q/2], which rounds ties *down* (toward the value
    whose remainder is +q/2).  Mirror that exactly.
    """
    rem = value % divisor
    if rem > divisor // 2:
        rem -= divisor
    return (value - rem) // divisor
