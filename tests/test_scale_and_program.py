"""Tests for scale-management policies and program-level invariants."""

import numpy as np
import pytest
from fractions import Fraction

import repro.orion.nn as on
from repro.backend import SimBackend, ToyBackend
from repro.ckks.params import paper_parameters, toy_parameters
from repro.core.program import normalize_scale
from repro.core.scale import (
    ErrorlessScalePolicy,
    WaterlineScalePolicy,
    run_pmult_chain,
)
from repro.models import square_act
from repro.nn import init
from repro.orion import OrionNetwork


class TestScalePolicies:
    def _chain(self, backend, policy, depth=6):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 32)
        weights = [rng.uniform(0.5, 1.0, 32) for _ in range(depth)]
        expected = values.copy()
        for w in weights:
            expected = expected * w
        decoded, scale = run_pmult_chain(backend, values, weights, policy)
        return decoded[:32], expected, scale

    def test_errorless_holds_delta(self, sim_params):
        backend = SimBackend(sim_params, noise_free=True)
        decoded, expected, scale = self._chain(backend, ErrorlessScalePolicy())
        assert scale == Fraction(sim_params.scale)
        assert np.abs(decoded - expected).max() < 1e-12

    def test_waterline_drifts(self, sim_params):
        backend = SimBackend(sim_params, noise_free=True)
        decoded, expected, scale = self._chain(backend, WaterlineScalePolicy())
        assert scale != Fraction(sim_params.scale)
        assert np.abs(decoded - expected).max() > 1e-9

    def test_errorless_on_exact_backend(self):
        params = toy_parameters(ring_degree=512, max_level=6, boot_levels=1)
        backend = ToyBackend(params, seed=0)
        decoded, expected, scale = self._chain(backend, ErrorlessScalePolicy(), depth=4)
        assert scale == Fraction(params.scale)
        assert np.abs(decoded - expected).max() < 5e-2  # toy noise only


class TestNormalizeScale:
    def test_pins_exact_target(self, sim_backend):
        ct = sim_backend.encode_encrypt(np.linspace(-1, 1, 16))
        # Perturb the scale the way a multiply would.
        pt = sim_backend.encode(np.full(16, 0.5), ct.level, 12345)
        drifted = sim_backend.rescale(sim_backend.mul_plain(ct, pt))
        target = Fraction(sim_backend.params.scale)
        assert drifted.scale != target
        out = normalize_scale(sim_backend, drifted, target)
        assert out.scale == target
        assert out.level == drifted.level - 1
        want = np.linspace(-1, 1, 16) * 0.5
        assert np.abs(sim_backend.decrypt(out)[:16] - want).max() < 1e-3

    def test_rejects_level_zero(self, sim_backend):
        ct = sim_backend.level_down(sim_backend.encode_encrypt(np.ones(4)), 0)
        with pytest.raises(ValueError):
            normalize_scale(sim_backend, ct, Fraction(sim_backend.params.scale))


class TestProgramInvariants:
    @pytest.fixture(scope="class")
    def compiled(self):
        init.seed_init(21)
        from repro.models.resnet import BasicBlock

        net = BasicBlock(2, 2, 1, act=square_act())
        rng = np.random.default_rng(21)
        onet = OrionNetwork(net, (2, 8, 8))
        onet.fit([rng.normal(0, 0.4, (8, 2, 8, 8))])
        return onet, rng, onet.compile(paper_parameters())

    def test_fork_value_not_clobbered_by_backbone_alignment(self, compiled):
        """Regression: mod-down for one consumer must not mutate the
        register other consumers (the residual shortcut) still read."""
        onet, rng, net = compiled
        img = rng.normal(0, 0.4, (2, 8, 8))
        backend = SimBackend(paper_parameters(), seed=22)
        fhe = net.run(backend, img)  # raises on level mismatch if broken
        clear = onet.forward_cleartext(img)
        assert np.abs(fhe - clear).max() < 0.05

    def test_deterministic_given_seed(self, compiled):
        onet, rng, net = compiled
        img = rng.normal(0, 0.4, (2, 8, 8))
        a = net.run(SimBackend(paper_parameters(), seed=5), img)
        b = net.run(SimBackend(paper_parameters(), seed=5), img)
        assert np.array_equal(a, b)

    def test_instruction_names_unique(self, compiled):
        _, _, net = compiled
        names = [instr.name for instr in net.program.instructions]
        assert len(names) == len(set(names))

    def test_policy_covers_every_instruction(self, compiled):
        _, _, net = compiled
        policy = net.placement.policy_map()
        for instr in net.program.instructions:
            assert instr.name in policy


class TestOrionApi:
    def test_fit_requires_batches(self):
        init.seed_init(0)
        onet = OrionNetwork(on.Linear(4, 2), (4,))
        with pytest.raises(ValueError):
            onet.fit([])

    def test_fit_accepts_labelled_tuples(self):
        init.seed_init(0)
        net = on.Sequential(on.Flatten(), on.Linear(16, 2))
        onet = OrionNetwork(net, (1, 4, 4))
        onet.fit([(np.zeros((2, 1, 4, 4)), np.zeros(2))])
        assert onet._calibration is not None

    def test_custom_activation_module(self):
        """Paper Section 6: arbitrary activations via on.Activation."""
        init.seed_init(3)

        class GeluNet(on.Module):
            def __init__(self):
                super().__init__()
                self.flatten = on.Flatten()
                self.fc1 = on.Linear(16, 8)
                self.act = on.Activation(
                    lambda x: 0.5 * x * (1 + np.tanh(0.79788456 * (x + 0.044715 * x**3))),
                    degree=31, name="gelu",
                )
                self.fc2 = on.Linear(8, 4)

            def forward(self, x):
                return self.fc2(self.act(self.fc1(self.flatten(x))))

        rng = np.random.default_rng(3)
        onet = OrionNetwork(GeluNet(), (1, 4, 4))
        onet.fit([rng.normal(0, 0.5, (8, 1, 4, 4))])
        compiled = onet.compile(paper_parameters())
        img = rng.normal(0, 0.5, (1, 4, 4))
        clear = onet.forward_cleartext(img)
        fhe = compiled.run(SimBackend(paper_parameters(), seed=4), img)
        assert np.abs(fhe - clear).max() < 0.02

    def test_precision_bits_definition(self):
        a = np.array([1.0, 2.0])
        b = a + 2.0**-10
        assert abs(OrionNetwork.precision_bits(a, b) - 10.0) < 1e-6

    def test_invalid_compile_mode(self):
        from repro.core.compiler import OrionCompiler

        with pytest.raises(ValueError):
            OrionCompiler(paper_parameters(), mode="bogus")
