"""Tests for the compile-once / serve-many runtime (repro.serve).

Covers the artifact store (bit-exact round-trips, loud schema
failures), cross-request SIMD slot batching (bit-exact against
sequential execution on the cleartext-packed path, precision-equal on
the exact backend), the scheduler's cost/deadline decision rule, the
multi-tenant key registry, the inference server's zero-compilation
serve path, and the serve-many stale-cache regression.
"""

import numpy as np
import pytest
from fractions import Fraction

from repro.backend import SimBackend, ToyBackend
from repro.ckks.keys import KeyManifest
from repro.ckks.params import toy_parameters
from repro.core.compiler import OrionCompiler
from repro.core.packing.layouts import BlockReplicatedLayout, VectorLayout
from repro.core.packing.matvec import build_linear_packing
from repro.core.placement.planner import solve_placement
from repro.models import LolaCnn, SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork
from repro.serve import (
    ArtifactSchemaError,
    KeyRegistry,
    load_artifact,
)
from repro.serve.runtime import InferenceServer
from repro.serve.scheduler import SlotBatchingScheduler


def _toy_params(ks_alpha: int = 1):
    return toy_parameters(
        ring_degree=2048,
        max_level=6,
        boot_levels=1,
        scale_bits=24,
        num_special_primes=2 if ks_alpha > 1 else 1,
        ks_alpha=ks_alpha,
    )


def _make_net(builder, shape, seed=0):
    init.seed_init(seed)
    net = builder()
    rng = np.random.default_rng(seed)
    onet = OrionNetwork(net, shape)
    onet.fit([rng.normal(0, 0.5, (8,) + shape)])
    return onet, rng


@pytest.fixture(scope="module")
def mlp_artifact(tmp_path_factory):
    onet, rng = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    params = _toy_params()
    path = str(tmp_path_factory.mktemp("artifacts") / "mlp.npz")
    compiled = onet.compile(params)
    compiled.export(path, params)
    return onet, rng, params, path, compiled


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("ks_alpha", [1, 2])
    def test_mlp_round_trip_bit_exact(self, tmp_path, ks_alpha):
        onet, rng = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        params = _toy_params(ks_alpha)
        path = str(tmp_path / f"mlp_a{ks_alpha}.npz")
        compiled = onet.compile(params)
        compiled.export(path, params)
        loaded = load_artifact(path)
        img = rng.normal(0, 0.5, (1, 8, 8))
        # Cleartext-packed execution is deterministic: bit-exact or bust.
        assert np.array_equal(
            loaded.program.run_cleartext_packed(img),
            compiled.program.run_cleartext_packed(img),
        )
        # Exact backend with the same seed: identical ciphertext math.
        assert np.array_equal(
            loaded.program.run(ToyBackend(params, seed=7), img),
            compiled.program.run(ToyBackend(params, seed=7), img),
        )

    @pytest.mark.parametrize("ks_alpha", [1, 2])
    def test_conv_round_trip_bit_exact(self, tmp_path, ks_alpha):
        onet, rng = _make_net(
            lambda: LolaCnn(image_size=8, channels=2), (1, 8, 8), seed=1
        )
        params = _toy_params(ks_alpha)
        path = str(tmp_path / f"cnn_a{ks_alpha}.npz")
        compiled = onet.compile(params)
        compiled.export(path, params)
        loaded = load_artifact(path)
        img = rng.normal(0, 0.5, (1, 8, 8))
        assert np.array_equal(
            loaded.program.run_cleartext_packed(img),
            compiled.program.run_cleartext_packed(img),
        )
        assert np.array_equal(
            loaded.program.run(ToyBackend(params, seed=11), img),
            compiled.program.run(ToyBackend(params, seed=11), img),
        )

    def test_manifest_reconstructs_exact_params(self, mlp_artifact):
        _, _, params, path, _ = mlp_artifact
        loaded = load_artifact(path)
        assert loaded.manifest.to_params() == params
        assert loaded.manifest.rotation_steps  # a real manifest, not empty

    def test_schema_version_mismatch_fails_loudly(self, tmp_path, mlp_artifact):
        import json

        _, _, _, path, _ = mlp_artifact
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        doc = json.loads(bytes(arrays.pop("__manifest__")).decode())
        doc["schema_version"] = 99
        bad_path = str(tmp_path / "bad.npz")
        np.savez(
            bad_path,
            __manifest__=np.frombuffer(json.dumps(doc).encode(), dtype=np.uint8),
            **arrays,
        )
        with pytest.raises(ArtifactSchemaError, match="schema version"):
            load_artifact(bad_path)

    def test_non_artifact_fails_loudly(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ArtifactSchemaError, match="not a serving artifact"):
            load_artifact(path)

    def test_manifest_covers_every_runtime_rotation(self, mlp_artifact):
        """Keys generated from the manifest alone must suffice — no
        lazy keygen on the request path, single-shot or slot-batched."""
        _, rng, params, path, _ = mlp_artifact
        loaded = load_artifact(path)
        registry = KeyRegistry(loaded.manifest)
        backend = registry.backend_for("tenant-a")
        keys_before = backend.context.keys.num_rotation_keys()
        loaded.program.run(backend, rng.normal(0, 0.5, (1, 8, 8)))
        loaded.program.batched(4).run(backend, rng.normal(0, 0.5, (4, 1, 8, 8)))
        assert backend.context.keys.num_rotation_keys() == keys_before

    def test_preload_skips_every_weight_encode(self, mlp_artifact):
        _, rng, params, path, _ = mlp_artifact
        loaded = load_artifact(path)
        backend = ToyBackend(params, seed=2)
        installed = loaded.preload(backend)
        assert installed > 0
        img = rng.normal(0, 0.5, (1, 8, 8))
        out = loaded.program.run(backend, img)
        # A second backend without preload produces identical results.
        cold = ToyBackend(params, seed=2)
        assert np.array_equal(out, loaded.program.run(cold, img))


class TestSlotBatching:
    @pytest.mark.parametrize(
        "builder,shape",
        [
            (lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8)),
            (lambda: LolaCnn(image_size=8, channels=2), (1, 8, 8)),
        ],
        ids=["mlp", "conv"],
    )
    def test_batched_cleartext_bit_exact_vs_sequential(self, builder, shape):
        onet, rng = _make_net(builder, shape, seed=2)
        params = _toy_params()
        compiled = onet.compile(params)
        program = compiled.program
        capacity = program.slot_batch_capacity()
        batch = min(4, capacity)
        assert batch >= 4, f"expected capacity >= 4, got {capacity}"
        imgs = [rng.normal(0, 0.5, shape) for _ in range(batch)]
        sequential = np.stack([program.run_cleartext_packed(im) for im in imgs])
        batched = program.batched(batch).run_cleartext_packed(np.stack(imgs))
        assert np.array_equal(batched, sequential)

    def test_batched_encrypted_matches_sequential_precision(self):
        onet, rng = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        params = _toy_params()
        compiled = onet.compile(params)
        program = compiled.program
        imgs = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(4)]
        packed = np.stack([program.run_cleartext_packed(im) for im in imgs])
        outs = program.batched(4).run(ToyBackend(params, seed=5), np.stack(imgs))
        for j in range(4):
            bits = OrionNetwork.precision_bits(outs[j], packed[j])
            assert bits > 5, f"client {j}: only {bits:.2f} bits"

    def test_batched_program_charges_one_execution(self):
        """The throughput win: 4 clients cost one program execution —
        the same ciphertext count as a single request."""
        onet, _ = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        params = _toy_params()
        program = onet.compile(params).program
        rng = np.random.default_rng(0)
        single_backend = SimBackend(params, seed=1)
        program.run(single_backend, rng.normal(0, 0.5, (1, 8, 8)))
        batch_backend = SimBackend(params, seed=1)
        program.batched(4).run(
            batch_backend, rng.normal(0, 0.5, (4, 1, 8, 8))
        )
        # Same op counts within a small factor (batched hybrid layers
        # relocate wrap rows into extra diagonals) — never 4x.
        single_ops = single_backend.ledger.multiplies
        batch_ops = batch_backend.ledger.multiplies
        assert batch_ops < 2 * single_ops

    def test_capacity_and_overflow(self):
        onet, _ = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        program = onet.compile(_toy_params()).program
        capacity = program.slot_batch_capacity()
        assert capacity >= 4
        with pytest.raises(ValueError, match="capacity"):
            program.batched(2 * capacity)

    def test_block_replicated_layout_round_trip(self):
        inner = VectorLayout(10, 64)
        layout = BlockReplicatedLayout(inner, batch=4, slots=64)
        data = np.arange(40, dtype=float).reshape(4, 10)
        assert np.array_equal(layout.unpack(layout.pack(data)), data)

    def test_block_replicated_layout_rejects_oversize(self):
        with pytest.raises(ValueError, match="block"):
            BlockReplicatedLayout(VectorLayout(40, 64), batch=4, slots=64)


class TestStaleCacheRegression:
    """Serve-many cache hazard: one pt_cache dict shared across scales
    and levels (exactly what artifact preloading does) must never serve
    a stale encode.  Before the fingerprinted cache keys this silently
    corrupted the second request's output by the scale ratio."""

    def test_shared_pt_cache_across_scales_and_levels(self):
        params = toy_parameters(ring_degree=64, max_level=6, scale_bits=20)
        backend = ToyBackend(params)
        n = params.slot_count
        rng = np.random.default_rng(1)
        vec = rng.normal(size=n) * 0.1
        terms = {(0, 0, 1): vec}
        x = rng.normal(size=n) * 0.1
        reference = vec * np.roll(x, -1)
        shared_cache = {}
        for level, scale_mult in ((5, 1), (5, 2), (3, 1), (5, 1)):
            ct = backend.encrypt(backend.encode(x, level, params.scale))
            pt_scale = Fraction(params.data_primes[level]) * scale_mult
            outs = backend.matvec_fused(
                [ct], terms, 1, pt_scale, pt_cache=shared_cache
            )
            got = backend.decrypt(backend.rescale(outs[0]))
            assert np.max(np.abs(got - reference)) < 1e-3, (
                f"stale encode served at level {level}, scale x{scale_mult}"
            )
        # One entry per distinct (level, scale) fingerprint, re-used on
        # the repeat — not one entry total, not one per call.
        assert len(shared_cache) == 3

    def test_packed_matvec_across_levels_on_one_backend(self):
        params = toy_parameters(ring_degree=64, max_level=6, scale_bits=20)
        backend = ToyBackend(params)
        n = params.slot_count
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(8, 16))
        layout = VectorLayout(16, n)
        packed = build_linear_packing(matrix, None, layout, name="fc")
        x = rng.normal(size=16) * 0.1
        reference = packed.execute_cleartext(layout.pack(x))
        for level in (5, 3, 5):
            cts = [
                backend.encrypt(backend.encode(v, level, params.scale))
                for v in layout.pack(x)
            ]
            outs = packed.execute(
                backend, cts, Fraction(params.data_primes[level])
            )
            got = np.array([backend.decrypt(c)[:n] for c in outs])
            assert np.max(np.abs(got - np.array(reference))) < 1e-2


class TestScheduler:
    def test_waits_below_capacity_before_deadline(self):
        sched = SlotBatchingScheduler(capacity=8, max_wait_seconds=1.0)
        sched.submit("a", 1, now=0.0)
        sched.submit("b", 2, now=0.0)
        assert sched.due(now=0.0) is None  # plenty of budget left

    def test_full_queue_flushes_immediately(self):
        sched = SlotBatchingScheduler(capacity=4, max_wait_seconds=100.0)
        for i in range(5):
            sched.submit(f"c{i}", i, now=0.0)
        batch = sched.due(now=0.0)
        assert batch is not None and batch.size == 4 and batch.reason == "full"
        assert sched.due(now=0.0) is None  # one left, deadline far away

    def test_deadline_forces_partial_batch(self):
        sched = SlotBatchingScheduler(
            capacity=8, modeled_run_seconds=0.5, max_wait_seconds=1.0
        )
        for i in range(3):
            sched.submit(f"c{i}", i, now=0.0)
        # At t=0.6, t + 0.5 modeled run >= 1.0 deadline: flush 2 (pow2).
        batch = sched.due(now=0.6)
        assert batch is not None and batch.size == 2 and batch.reason == "deadline"

    def test_single_when_batching_not_worthwhile(self):
        sched = SlotBatchingScheduler(
            capacity=8, max_wait_seconds=0.0, batch_worthwhile=lambda size: False
        )
        sched.submit("a", 1, now=0.0)
        sched.submit("b", 2, now=0.0)
        batch = sched.due(now=1.0)
        assert batch.size == 1 and batch.reason == "single"

    def test_flush_drains_into_power_of_two_batches(self):
        sched = SlotBatchingScheduler(capacity=4, max_wait_seconds=100.0)
        for i in range(7):
            sched.submit(f"c{i}", i, now=0.0)
        sizes = [b.size for b in sched.flush()]
        assert sizes == [4, 2, 1]
        assert len(sched) == 0


class TestKeyRegistry:
    @pytest.fixture(scope="class")
    def manifest(self):
        onet, _ = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        params = _toy_params()
        compiled = onet.compile(params)
        return KeyManifest.for_program(params, compiled.program)

    def test_backend_cached_per_client(self, manifest):
        registry = KeyRegistry(manifest)
        a1 = registry.backend_for("alice")
        a2 = registry.backend_for("alice")
        b = registry.backend_for("bob")
        assert a1 is a2 and a1 is not b
        assert registry.keygen_count == 2

    def test_manifest_keys_pregenerated(self, manifest):
        registry = KeyRegistry(manifest)
        backend = registry.backend_for("alice")
        have = set(backend.context.keys.galois)
        needed = {
            backend.context.encoder.rotation_exponent(step)
            for step in manifest.rotation_steps
        }
        assert needed <= have

    def test_lru_eviction(self, manifest):
        registry = KeyRegistry(manifest, max_clients=2)
        registry.backend_for("a")
        registry.backend_for("b")
        registry.backend_for("a")  # refresh a
        registry.backend_for("c")  # evicts b
        assert registry.keygen_count == 3
        registry.backend_for("b")  # re-keygen
        assert registry.keygen_count == 4

    def test_fingerprint_distinguishes_manifests(self, manifest):
        other = KeyManifest(
            params_dict=manifest.params_dict,
            rotation_steps=manifest.rotation_steps + (999,),
        )
        assert other.fingerprint() != manifest.fingerprint()


class TestInferenceServer:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        onet, rng = _make_net(lambda: SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        params = _toy_params()
        path = str(tmp_path_factory.mktemp("serve") / "mlp.npz")
        onet.export(path, params)
        artifact = load_artifact(path)
        backend = ToyBackend(params, seed=9)
        server = InferenceServer(artifact, backend, max_wait_seconds=0.0)
        return onet, rng, params, artifact, server

    def test_batched_serving_end_to_end(self, served):
        onet, rng, params, artifact, server = served
        compilations_before = OrionCompiler.invocations
        placements_before = solve_placement.invocations
        imgs = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(4)]
        tickets = [
            server.submit(im, client_id=f"c{i}", now=0.0)
            for i, im in enumerate(imgs)
        ]
        results = {r.ticket: r for r in server.step(now=10.0)}
        assert sorted(results) == sorted(tickets)
        assert all(r.batch_size == 4 for r in results.values())
        packed = [artifact.program.run_cleartext_packed(im) for im in imgs]
        for ticket, im, ref in zip(tickets, imgs, packed):
            bits = OrionNetwork.precision_bits(results[ticket].output, ref)
            assert bits > 5
        # The serve path never compiles or plans.
        assert OrionCompiler.invocations == compilations_before
        assert solve_placement.invocations == placements_before
        assert server.compilations_since_load == 0
        assert server.placements_since_load == 0

    def test_serve_now_single(self, served):
        _, rng, _, artifact, server = served
        img = rng.normal(0, 0.5, (1, 8, 8))
        result = server.serve_now(img)
        ref = artifact.program.run_cleartext_packed(img)
        assert OrionNetwork.precision_bits(result.output, ref) > 5
        assert result.batch_size == 1

    def test_telemetry_accumulates(self, served):
        *_, server = served
        stats = server.stats()
        assert stats["requests_served"] >= 5
        assert stats["request_latency"]["count"] >= 5
        assert stats["modeled_seconds"] > 0
        assert stats["ledger"]["rotations"] > 0
        assert "linear" in stats["ops"]
        assert stats["preloaded_plaintexts"] > 0

    def test_max_batch_floored_to_power_of_two(self, served):
        """A non-power-of-two cap must not produce an unexecutable
        batch size (block replication divides the slot count)."""
        _, _, params, artifact, _ = served
        server = InferenceServer(
            artifact, ToyBackend(params, seed=1), max_batch=3, preload=False
        )
        assert server.scheduler.capacity == 2
        with pytest.raises(ValueError, match="max_batch"):
            InferenceServer(
                artifact, ToyBackend(params, seed=1), max_batch=0, preload=False
            )

    def test_drain_flushes_queue(self, served):
        _, rng, *_ , server = served
        for i in range(3):
            server.submit(rng.normal(0, 0.5, (1, 8, 8)), now=0.0)
        results = server.drain()
        assert len(results) == 3
        assert sorted(r.batch_size for r in results) == [1, 2, 2]
