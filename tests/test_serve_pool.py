"""Tests for fleet-scale serving: the sharded worker pool behind
``repro.serve.open``.

The correctness gates of the pool PR:

- **routing determinism** — rendezvous hashing pins every
  (artifact, client) to one worker, reproducibly across deployments;
- **per-worker bit-exactness** — each pool worker's outputs are
  bit-identical to a solo ``InferenceServer`` replaying the same
  requests (the pool is pure orchestration; the hot path is untouched);
- **admission conservation** — ``submitted == admitted + rejected`` and
  ``admitted == completed + in_flight`` at every observation point,
  including under overload and after drain;
- **shared mmap tables** — workers serve from read-only mmap-backed
  views of the artifact; no table is ever copied on the request path;
- **shim parity** — the deprecated ``repro.serve.InferenceServer``
  import warns but behaves bit-identically to the internal class;
- **typed stats** — ``ServerStats`` round-trips through JSON and
  rejects foreign schema versions;
- **key pinning** — the registry never LRU-evicts key material with
  in-flight requests.
"""

import json
import warnings

import numpy as np
import pytest

from repro import serve
from repro.ckks.params import toy_parameters
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork
from repro.serve import (
    AdmissionError,
    ArtifactMap,
    KeyRegistry,
    ServerConfig,
    ServerStats,
    StatsSchemaError,
    is_mmap_backed,
)
from repro.serve.keys import default_backend_factory
from repro.serve.pool import verify_mmap_tables
from repro.serve.runtime import InferenceServer


def _params():
    return toy_parameters(
        ring_degree=1024, max_level=6, boot_levels=1, scale_bits=24
    )


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    init.seed_init(0)
    onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    rng = np.random.default_rng(0)
    onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
    params = _params()
    path = str(tmp_path_factory.mktemp("artifacts") / "mlp.npz")
    onet.export(path, params)
    return path


def _images(n, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(n)]


def _pool_config(**overrides):
    base = dict(workers=4, batch_window_seconds=0.0, max_queue_depth=8)
    base.update(overrides)
    return ServerConfig(**base)


class TestRouting:
    def test_deterministic_across_deployments(self, artifact_path):
        clients = [f"client-{i}" for i in range(32)]
        with serve.open(artifact_path, _pool_config()) as a:
            routes_a = [a.route(c) for c in clients]
            routes_again = [a.route(c) for c in clients]
        with serve.open(artifact_path, _pool_config()) as b:
            routes_b = [b.route(c) for c in clients]
        assert routes_a == routes_again == routes_b
        # Rendezvous hashing over 32 clients should touch every worker.
        assert set(routes_a) == {0, 1, 2, 3}

    def test_routing_seed_reshuffles(self, artifact_path):
        clients = [f"client-{i}" for i in range(32)]
        with serve.open(artifact_path, _pool_config(routing_seed=0)) as a:
            routes_a = [a.route(c) for c in clients]
        with serve.open(artifact_path, _pool_config(routing_seed=1)) as b:
            routes_b = [b.route(c) for c in clients]
        assert routes_a != routes_b

    def test_results_are_stamped_with_route(self, artifact_path):
        with serve.open(artifact_path, _pool_config()) as server:
            for i, image in enumerate(_images(6)):
                server.submit(image, client_id=f"client-{i}")
            results = server.drain()
            for result in results:
                assert result.worker_id == server.route(result.client_id)
                assert result.artifact_id == server.artifact_ids[0]


class TestBitExactness:
    def test_per_worker_matches_solo_server(self, artifact_path):
        """Each pool worker == a solo InferenceServer replaying its
        share of the traffic (same key seed, same batching rule)."""
        images = _images(10)
        clients = [f"client-{i}" for i in range(len(images))]
        with serve.open(artifact_path, _pool_config()) as server:
            for client, image in zip(clients, images):
                server.submit(image, client_id=client)
            pool_results = {r.client_id: r for r in server.drain()}
            shares = {}
            for client, image in zip(clients, images):
                shares.setdefault(server.route(client), []).append(
                    (client, image)
                )
        artifact = ArtifactMap(artifact_path).load()
        for worker_id, share in shares.items():
            solo = InferenceServer(
                artifact,
                default_backend_factory(artifact.manifest.to_params(), 0),
                batching=True,
                max_wait_seconds=0.0,
            )
            for client, image in share:
                solo.submit(image, client_id=client)
            for solo_result in solo.drain():
                pool_result = pool_results[solo_result.client_id]
                assert pool_result.worker_id == worker_id
                assert pool_result.batch_size == solo_result.batch_size
                assert np.array_equal(pool_result.output, solo_result.output)

    def test_serve_now_matches_solo(self, artifact_path):
        image = _images(1)[0]
        with serve.open(artifact_path, _pool_config()) as server:
            pool_result = server.serve_now(image, client_id="alice")
        artifact = ArtifactMap(artifact_path).load()
        solo = InferenceServer(
            artifact,
            default_backend_factory(artifact.manifest.to_params(), 0),
            batching=True,
            max_wait_seconds=0.0,
        )
        solo_result = solo.serve_now(image, client_id="alice")
        assert np.array_equal(pool_result.output, solo_result.output)


class TestAdmission:
    def test_queue_full_rejects_with_retry_hint(self, artifact_path):
        config = _pool_config(max_queue_depth=2)
        with serve.open(artifact_path, config) as server:
            # One client -> one worker; the third submit must bounce.
            images = _images(6)
            admitted, rejections = 0, []
            for image in images:
                try:
                    server.submit(image, client_id="hammer")
                    admitted += 1
                except AdmissionError as exc:
                    rejections.append(exc)
            assert admitted == 2
            assert len(rejections) == 4
            for exc in rejections:
                assert exc.retry_after_ms > 0
                assert exc.worker_id == server.route("hammer")
                assert exc.queue_depth == 2
            server.drain()

    def test_conservation_under_overload(self, artifact_path):
        config = _pool_config(max_queue_depth=2)
        with serve.open(artifact_path, config) as server:
            for i, image in enumerate(_images(16)):
                try:
                    server.submit(image, client_id=f"client-{i % 3}")
                except AdmissionError:
                    pass
                if i == 7:  # conservation holds mid-stream, queues nonempty
                    mid = server.stats()
                    assert mid.requests_submitted == 8
                    assert mid.in_flight > 0
            stats = server.stats()
            assert stats.requests_submitted == 16
            assert stats.requests_rejected > 0
            assert (
                stats.requests_submitted
                == stats.requests_admitted + stats.requests_rejected
            )
            server.drain()
            final = server.stats()
            assert final.in_flight == 0
            assert final.requests_completed == final.requests_admitted
            assert 0.0 < final.reject_rate < 1.0

    def test_latency_budget_rejects(self, artifact_path):
        # Budget sized to one modeled batch: the first request fits,
        # a second on the same worker overflows the backlog estimate.
        probe = serve.open(artifact_path, _pool_config())
        modeled = next(
            iter(probe._dispatcher.pool.workers[0].profiles.values())
        ).modeled_seconds
        probe.close()
        config = _pool_config(
            max_queue_depth=64, admission_budget_seconds=modeled * 1.5
        )
        with serve.open(artifact_path, config) as server:
            server.submit(_images(1)[0], client_id="alice")
            with pytest.raises(AdmissionError) as exc_info:
                server.submit(_images(1)[0], client_id="alice")
            assert "budget" in str(exc_info.value)
            server.drain()

    def test_drain_leaves_zero_in_flight(self, artifact_path):
        with serve.open(artifact_path, _pool_config()) as server:
            tickets = [
                server.submit(image, client_id=f"client-{i}")
                for i, image in enumerate(_images(8))
            ]
            results = server.drain()
            assert sorted(r.ticket for r in results) == sorted(tickets)
            stats = server.stats()
            assert stats.in_flight == 0
            assert stats.requests_completed == len(tickets)


class TestSharedMmapTables:
    def test_worker_tables_are_mmap_backed(self, artifact_path):
        with serve.open(artifact_path, _pool_config()) as server:
            server.serve_now(_images(1)[0], client_id="alice")
            stats = server.stats()
            assert all(w.mmap_backed for w in stats.workers)
            for worker in server._dispatcher.pool.workers:
                for inner in worker.servers.values():
                    assert verify_mmap_tables(inner, artifact_path)

    def test_mapped_arrays_are_read_only(self, artifact_path):
        amap = ArtifactMap(artifact_path)
        assert amap.inplace  # serving exports are uncompressed
        assert amap.mapped_bytes() > 0
        for name, array in amap.arrays.items():
            assert is_mmap_backed(array), name
            with pytest.raises((ValueError, TypeError)):
                array[...] = 0

    def test_verify_rejects_copied_tables(self, artifact_path):
        """A worker built from a plain (heap-loaded) artifact must fail
        the mmap audit — the guard actually detects copies."""
        artifact = serve.load_artifact(artifact_path)
        solo = InferenceServer(
            artifact,
            default_backend_factory(artifact.manifest.to_params(), 0),
            max_wait_seconds=0.0,
        )
        with pytest.raises(RuntimeError, match="copied off the artifact map"):
            verify_mmap_tables(solo, artifact_path)

    def test_compressed_artifact_maps_via_sidecar(
        self, artifact_path, tmp_path
    ):
        artifact = serve.load_artifact(artifact_path)
        compressed = str(tmp_path / "mlp_compressed.npz")
        artifact.save(compressed, compress=True)
        amap = ArtifactMap(compressed)
        assert not amap.inplace
        for name, array in amap.arrays.items():
            assert is_mmap_backed(array), name
        # The sidecar is stamped and re-used by subsequent opens.
        again = ArtifactMap(compressed)
        assert not again.inplace
        reference = ArtifactMap(artifact_path).load()
        image = _images(1)[0]
        expected = reference.program.run_cleartext_packed(image)
        actual = amap.load().program.run_cleartext_packed(image)
        assert np.array_equal(expected, actual)


class TestFrontDoor:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(workers=0)
        with pytest.raises(ValueError):
            ServerConfig(mode="threads")
        with pytest.raises(ValueError):
            ServerConfig(key_policy="rotating")
        with pytest.raises(ValueError):
            ServerConfig(kernel_backend="cuda")
        with pytest.raises(ValueError):
            ServerConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            ServerConfig(admission_budget_seconds=0.0)
        config = ServerConfig().with_overrides(workers=2)
        assert config.workers == 2

    def test_open_accepts_loaded_artifact(self, artifact_path):
        artifact = serve.load_artifact(artifact_path)
        with serve.open(artifact, ServerConfig(batch_window_seconds=0.0)) as server:
            result = server.serve_now(_images(1)[0], client_id="alice")
            assert result.worker_id == 0
            # In-memory artifacts cannot be mmap-shared; stats say so.
            assert not server.stats().workers[0].mmap_backed

    def test_open_mixed_artifacts(self, artifact_path):
        source = {"mlp-a": artifact_path, "mlp-b": artifact_path}
        with serve.open(source, _pool_config(workers=2)) as server:
            assert server.artifact_ids == ("mlp-a", "mlp-b")
            image = _images(1)[0]
            a = server.serve_now(image, client_id="alice", artifact="mlp-a")
            b = server.serve_now(image, client_id="alice", artifact="mlp-b")
            assert a.artifact_id == "mlp-a" and b.artifact_id == "mlp-b"
            assert np.array_equal(a.output, b.output)
            with pytest.raises(KeyError):
                server.submit(image, artifact="mlp-c")

    def test_unknown_artifact_and_duplicate_ids(self, artifact_path):
        with pytest.raises(ValueError, match="duplicate"):
            serve.open([artifact_path, artifact_path])
        with pytest.raises(TypeError):
            serve.open(123)

    def test_deprecated_shims_warn_and_match(self, artifact_path):
        artifact = ArtifactMap(artifact_path).load()
        params = artifact.manifest.to_params()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = serve.InferenceServer(
                artifact,
                default_backend_factory(params, 0),
                max_wait_seconds=0.0,
            )
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        internal = InferenceServer(
            artifact,
            default_backend_factory(params, 0),
            max_wait_seconds=0.0,
        )
        image = _images(1)[0]
        assert np.array_equal(
            shim.serve_now(image).output, internal.serve_now(image).output
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            scheduler = serve.SlotBatchingScheduler(capacity=4)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert scheduler.capacity == 4


class TestStatsSchema:
    def test_round_trip(self, artifact_path):
        with serve.open(artifact_path, _pool_config()) as server:
            for i, image in enumerate(_images(5)):
                server.submit(image, client_id=f"client-{i}")
            server.drain()
            stats = server.stats()
        doc = stats.to_json(indent=2)
        assert ServerStats.from_json(doc) == stats
        payload = json.loads(doc)
        assert payload["schema_version"] == serve.STATS_SCHEMA_VERSION
        assert payload["reject_rate"] == 0.0
        assert len(payload["workers"]) == 4

    def test_foreign_schema_version_rejected(self, artifact_path):
        with serve.open(artifact_path, ServerConfig()) as server:
            payload = server.stats().to_payload()
        payload["schema_version"] = 999
        with pytest.raises(StatsSchemaError):
            ServerStats.from_payload(payload)

    def test_conservation_enforced_by_schema(self):
        with pytest.raises(ValueError, match="conservation"):
            ServerStats(
                schema_version=serve.STATS_SCHEMA_VERSION,
                artifacts=("mlp",),
                requests_submitted=5,
                requests_admitted=3,
                requests_rejected=1,
                requests_completed=3,
                in_flight=0,
                kernel_backend="numpy",
                workers=(),
            )


class TestKeyPinning:
    @pytest.fixture(scope="class")
    def manifest(self, artifact_path):
        return serve.load_artifact(artifact_path).manifest

    def test_pinned_client_survives_lru_pressure(self, manifest):
        registry = KeyRegistry(manifest, max_clients=2)
        registry.backend_for("a")
        registry.pin("a")  # request in flight on a's keys
        registry.backend_for("b")
        registry.backend_for("c")  # over capacity: 'a' is LRU but pinned,
        assert registry.keygen_count == 3  # so 'b' is evicted instead
        backend = registry.backend_for("a")  # no re-keygen
        assert registry.keygen_count == 3
        assert backend is registry.backend_for("a")
        registry.backend_for("b")  # re-keygen 'b', evicts 'c'
        assert registry.keygen_count == 4
        registry.unpin("a")
        # Released: 'a' is the LRU victim of the next insert.
        registry.backend_for("c")
        assert registry.keygen_count == 5
        registry.backend_for("a")  # now a cache miss again
        assert registry.keygen_count == 6

    def test_unpin_releases_deferred_eviction(self, manifest):
        registry = KeyRegistry(manifest, max_clients=1)
        registry.backend_for("a")
        registry.pin("a")
        registry.backend_for("b")  # cannot shrink: 'a' pinned, 'b' newest
        assert len(registry) == 2
        registry.unpin("a")
        assert len(registry) == 1

    def test_evict_refuses_pinned(self, manifest):
        registry = KeyRegistry(manifest)
        registry.backend_for("a")
        registry.pin("a")
        registry.pin("a")
        with pytest.raises(RuntimeError, match="in-flight"):
            registry.evict("a")
        registry.unpin("a")
        with pytest.raises(RuntimeError, match="in-flight"):
            registry.evict("a")
        registry.unpin("a")
        assert registry.evict("a")

    def test_lease_pins_for_the_duration(self, manifest):
        registry = KeyRegistry(manifest)
        with registry.lease("a") as backend:
            assert registry.pin_count("a") == 1
            assert backend is registry.backend_for("a")
            with pytest.raises(RuntimeError):
                registry.evict("a")
        assert registry.pin_count("a") == 0
        assert registry.evict("a")

    def test_pin_unknown_client_and_double_unpin(self, manifest):
        registry = KeyRegistry(manifest)
        with pytest.raises(KeyError):
            registry.pin("ghost")
        registry.backend_for("a")
        registry.pin("a")
        registry.unpin("a")
        with pytest.raises(RuntimeError):
            registry.unpin("a")


class TestProcessMode:
    def test_process_pool_smoke(self, artifact_path):
        """Two real multiprocessing workers over the same mapped file,
        bit-exact against the inline pool under the same config."""
        config = _pool_config(workers=2, mode="process", max_queue_depth=16)
        images = _images(6)
        clients = [f"client-{i}" for i in range(len(images))]
        with serve.open(artifact_path, config) as server:
            for client, image in zip(clients, images):
                server.submit(image, client_id=client)
            process_results = {r.client_id: r for r in server.drain()}
            process_stats = server.stats()
        assert process_stats.in_flight == 0
        assert process_stats.requests_completed == len(images)
        assert all(w.mmap_backed for w in process_stats.workers)
        inline = config.with_overrides(mode="inline")
        with serve.open(artifact_path, inline) as server:
            for client, image in zip(clients, images):
                server.submit(image, client_id=client)
            inline_results = {r.client_id: r for r in server.drain()}
        for client in clients:
            assert np.array_equal(
                process_results[client].output, inline_results[client].output
            )
            assert (
                process_results[client].worker_id
                == inline_results[client].worker_id
            )
