"""Tests for tracing and SESE region extraction."""

import numpy as np
import pytest

import repro.orion.nn as on
from repro.autograd.tensor import Tensor, no_grad
from repro.trace.graph import TracedValue, tracer
from repro.trace.sese import RegionItem, build_region_tree
from repro.models.resnet import BasicBlock, resnet_cifar
from repro.nn import init


def trace_net(net, shape=(1, 4, 4)):
    net.eval()
    with no_grad():
        with tracer() as graph:
            net(TracedValue(Tensor(np.zeros((1,) + shape)), graph.input_uid))
    return graph


class _ChainNet(on.Module):
    def __init__(self):
        super().__init__()
        self.conv = on.Conv2d(1, 2, 3, 1, 1)
        self.act = on.Square()
        self.flat = on.Flatten()
        self.fc = on.Linear(32, 4)

    def forward(self, x):
        return self.fc(self.flat(self.act(self.conv(x))))


class _ResidualNet(on.Module):
    def __init__(self):
        super().__init__()
        self.conv1 = on.Conv2d(1, 2, 3, 1, 1)
        self.block = BasicBlock(2, 2, 1, act=lambda: on.Square())

    def forward(self, x):
        return self.block(self.conv1(x))


class TestTracing:
    def test_chain_records_all_leaves(self):
        graph = trace_net(_ChainNet())
        kinds = [type(n.module).__name__ for n in graph.nodes]
        assert kinds == ["Conv2d", "Square", "Flatten", "Linear"]

    def test_shapes_recorded(self):
        graph = trace_net(_ChainNet())
        assert graph.nodes[0].output_shape == (2, 4, 4)
        assert graph.nodes[-1].output_shape == (4,)

    def test_uids_connect(self):
        graph = trace_net(_ChainNet())
        for prev, nxt in zip(graph.nodes, graph.nodes[1:]):
            assert nxt.inputs == (prev.output,)

    def test_fork_detection(self):
        graph = trace_net(_ResidualNet())
        assert len(graph.fork_uids()) == 1

    def test_not_tracing_runs_plain(self):
        net = _ChainNet()
        net.eval()
        with no_grad():
            out = net(Tensor(np.zeros((1, 1, 4, 4))))
        assert out.shape == (1, 4)

    def test_raw_tensor_during_trace_raises(self):
        net = _ChainNet()
        with tracer():
            with pytest.raises(TypeError):
                net.conv(Tensor(np.zeros((1, 1, 4, 4))))


class TestRegionTree:
    def test_chain_has_no_regions(self):
        tree = build_region_tree(trace_net(_ChainNet()))
        assert tree.region_count() == 0
        assert len(tree.items) == 4

    def test_residual_block_region(self):
        tree = build_region_tree(trace_net(_ResidualNet()))
        assert tree.region_count() == 1
        region = next(i for i in tree.items if isinstance(i, RegionItem))
        # Identity shortcut: one branch empty, join is the Add.
        assert type(region.join.module).__name__ == "Add"
        lens = sorted([len(region.branch_a.items), len(region.branch_b.items)])
        assert lens[0] == 0 and lens[1] >= 4

    def test_resnet20_region_count(self):
        init.seed_init(0)
        net = resnet_cifar(20, act=lambda: on.Square(), width=4)
        tree = build_region_tree(trace_net(net, (3, 8, 8)))
        # 9 residual blocks -> 9 regions.
        assert tree.region_count() == 9

    def test_layer_nodes_cover_graph(self):
        graph = trace_net(_ResidualNet())
        tree = build_region_tree(graph)
        assert len(tree.layer_nodes()) == len(graph.nodes)

    def test_projection_shortcut_region(self):
        init.seed_init(0)
        net = BasicBlock(2, 4, 2, act=lambda: on.Square())
        graph = trace_net(net, (2, 8, 8))
        tree = build_region_tree(graph)
        region = next(i for i in tree.items if isinstance(i, RegionItem))
        lens = sorted([len(region.branch_a.items), len(region.branch_b.items)])
        assert lens[0] == 2  # conv + bn shortcut
