"""Unit and property tests for repro.utils."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intmath import (
    bit_reverse_indices,
    ceil_div,
    centered_mod,
    int_log2,
    is_power_of_two,
    mod_inverse,
    next_power_of_two,
)
from repro.utils.primes import find_ntt_primes, is_prime
from repro.utils.rng import SeededRng
from repro.utils.storage import DiagonalStore


class TestIntMath:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_int_log2(self):
        assert int_log2(1) == 0
        assert int_log2(65536) == 16
        with pytest.raises(ValueError):
            int_log2(12)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_next_power_of_two_properties(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p < 2 * n or n == 1

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_ceil_div(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b

    def test_ceil_div_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    @given(st.integers(min_value=2, max_value=10**6))
    def test_mod_inverse(self, m):
        a = 1
        while True:
            import math

            if math.gcd(a, m) == 1:
                break
            a += 1
        inv = mod_inverse(a, m)
        assert (a * inv) % m == 1

    def test_mod_inverse_missing(self):
        with pytest.raises(ValueError):
            mod_inverse(4, 8)

    def test_bit_reverse_is_involution(self):
        for n in (2, 8, 64):
            rev = bit_reverse_indices(n)
            assert np.array_equal(rev[rev], np.arange(n))

    def test_centered_mod_range(self):
        q = 97
        vals = np.arange(q)
        centered = centered_mod(vals, q)
        assert centered.min() >= -(q // 2)
        assert centered.max() <= q // 2
        assert np.array_equal(centered % q, vals)


class TestPrimes:
    def test_is_prime_small(self):
        primes_below_50 = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for n in range(50):
            assert is_prime(n) == (n in primes_below_50)

    def test_is_prime_large(self):
        assert is_prime((1 << 31) - 1)  # Mersenne prime
        assert not is_prime((1 << 31) - 3)

    def test_find_ntt_primes_congruence(self):
        n = 1024
        primes = find_ntt_primes(28, 5, n)
        assert len(set(primes)) == 5
        for q in primes:
            assert q % (2 * n) == 1
            assert is_prime(q)
            assert 26 <= q.bit_length() <= 30

    def test_find_ntt_primes_exclusion(self):
        n = 256
        first = find_ntt_primes(25, 3, n)
        second = find_ntt_primes(25, 3, n, exclude=tuple(first))
        assert not set(first) & set(second)


class TestSeededRng:
    def test_determinism(self):
        a = SeededRng(42).uniform_mod(1000, 16)
        b = SeededRng(42).uniform_mod(1000, 16)
        assert np.array_equal(a, b)

    def test_fork_independence(self):
        root = SeededRng(1)
        a = root.fork(1).uniform_mod(10**6, 100)
        b = root.fork(2).uniform_mod(10**6, 100)
        assert not np.array_equal(a, b)

    def test_ternary_values(self):
        vals = SeededRng(0).ternary(1000)
        assert set(np.unique(vals)) <= {-1, 0, 1}

    def test_gaussian_std(self):
        vals = SeededRng(0).gaussian(3.2, 100000)
        assert 2.8 < vals.std() < 3.6


class TestDiagonalStore:
    def test_memory_roundtrip(self):
        store = DiagonalStore()
        store.put_group("layer0", {"d0": np.arange(5), "d1": np.ones(3)})
        assert np.array_equal(store.get("layer0", "d0"), np.arange(5))
        assert store.groups() == ["layer0"]
        assert "layer0" in store

    def test_disk_roundtrip(self, tmp_path):
        store = DiagonalStore(str(tmp_path))
        data = {"diag_3": np.random.default_rng(0).normal(size=64)}
        store.put_group("conv1", data)
        store.evict()
        reloaded = DiagonalStore(str(tmp_path))
        assert np.allclose(reloaded.get("conv1", "diag_3"), data["diag_3"])
        assert reloaded.nbytes() > 0

    def test_missing_group_raises(self):
        with pytest.raises(KeyError):
            DiagonalStore().get_group("nope")

    def test_overwrite_invalidates_cache(self):
        store = DiagonalStore()
        store.put_group("g", {"x": np.zeros(2)})
        store.get_group("g")
        store.put_group("g", {"x": np.ones(2)})
        assert np.array_equal(store.get("g", "x"), np.ones(2))
