#!/usr/bin/env python
"""CI docs gate: every relative markdown link and anchor must resolve.

Scans ``README.md`` and ``docs/*.md`` for inline markdown links,
resolves each relative target against the linking file, and checks
anchors (``#fragment``) against the target file's headings using
GitHub's slug rules (lowercase, punctuation stripped, spaces to
hyphens).  External links (``http://``, ``https://``, ``mailto:``) are
skipped — the gate is about keeping the docs' *internal* cross-links
alive as pages move and sections rename, not about the network.

    python tools/check_doc_links.py [file ...]

Exit code 0 = every link resolves; 1 = at least one dead link, each
reported on its own ``file:line`` line.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Inline links only; reference-style links are not used in this repo.
# Images (![alt](src)) are checked the same way — a missing diagram is
# as dead as a missing page.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: strip markdown/punctuation, lowercase,
    spaces to hyphens (consecutive spaces collapse via the split)."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return "-".join(text.split())


def _anchors(path: str) -> set:
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = _HEADING.match(line)
            if not match:
                continue
            slug = _slugify(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def _doc_files():
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        files.extend(
            os.path.join(docs, name)
            for name in sorted(os.listdir(docs))
            if name.endswith(".md")
        )
    return files


def check_file(path: str) -> list:
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL):
                    continue
                where = f"{os.path.relpath(path, REPO_ROOT)}:{lineno}"
                link_path, _, fragment = target.partition("#")
                if link_path:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), link_path)
                    )
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{where}: dead link {target!r} "
                            f"({os.path.relpath(resolved, REPO_ROOT)} "
                            "does not exist)"
                        )
                        continue
                else:
                    resolved = path  # same-file anchor
                if fragment and resolved.endswith(".md"):
                    if fragment not in _anchors(resolved):
                        errors.append(
                            f"{where}: dead anchor {target!r} (no heading "
                            f"slugs to '#{fragment}' in "
                            f"{os.path.relpath(resolved, REPO_ROOT)})"
                        )
    return errors


def main(argv) -> int:
    files = [os.path.abspath(p) for p in argv[1:]] or _doc_files()
    errors = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        print(f"doc-links FAILED ({len(errors)} dead link(s)):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"doc-links OK: {len(files)} files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
